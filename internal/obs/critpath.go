package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"twoface/internal/cluster"
)

// Critical-path analysis of a run's makespan. Every algorithm here ends in
// a cluster-wide barrier, so the modeled makespan is the straggler rank's
// NodeTime; inside a rank, the sync and async halves run on disjoint thread
// groups and the longer one carries the half the rank ends on. This
// analyzer reconstructs that chain from the per-rank Breakdown ledgers
// (optionally enriched with the tracer's per-op spans): which rank is the
// straggler, which half of it is on the critical path, which phase inside
// that half dominates, and how long every other rank idles in the final
// barrier waiting for it. All seconds are copied from the ledger verbatim —
// the attribution reconciles with the Breakdown bit-for-bit, which is what
// lets a regression bot trust a diff of two of these.

// RankPath is one rank's slice of the critical-path attribution. The eight
// ledger fields are verbatim copies of the rank's Breakdown.
type RankPath struct {
	Rank int `json:"rank"`

	SyncComm    float64 `json:"sync_comm"`
	SyncComp    float64 `json:"sync_comp"`
	SyncOverlap float64 `json:"sync_overlap"`
	AsyncComm   float64 `json:"async_comm"`
	AsyncComp   float64 `json:"async_comp"`
	Other       float64 `json:"other"`
	Checkpoint  float64 `json:"checkpoint,omitempty"`
	Recovery    float64 `json:"recovery,omitempty"`

	// SyncHalf is the pipelined sync-side makespan contribution
	// (SyncComm + SyncComp - SyncOverlap); AsyncHalf is AsyncComm +
	// AsyncComp. NodeTime = Other + Checkpoint + Recovery +
	// max(SyncHalf, AsyncHalf).
	SyncHalf  float64 `json:"sync_half"`
	AsyncHalf float64 `json:"async_half"`
	NodeTime  float64 `json:"node_time"`

	// BarrierWait is how long this rank idles in the final barrier waiting
	// for the straggler: makespan - NodeTime. Zero on the critical path.
	BarrierWait float64 `json:"barrier_wait"`

	// CriticalHalf names the half that carries this rank's NodeTime:
	// "sync", "async", or "tie".
	CriticalHalf string `json:"critical_half"`
	// Critical marks the straggler rank — the one whose NodeTime is the
	// cluster makespan.
	Critical bool `json:"critical,omitempty"`
}

// OpSeconds attributes seconds to one named span op (from the tracer).
type OpSeconds struct {
	Op      string           `json:"op"`
	Cat     cluster.Category `json:"-"`
	CatName string           `json:"category"`
	Seconds float64          `json:"seconds"`
}

// CriticalPath is the makespan attribution of one run.
type CriticalPath struct {
	// Makespan is the cluster's modeled time: max over ranks of NodeTime.
	Makespan float64 `json:"makespan"`
	// Straggler is the rank whose NodeTime equals the makespan (lowest
	// rank wins ties).
	Straggler int `json:"straggler"`
	// CriticalHalf is the straggler's critical half ("sync", "async",
	// "tie").
	CriticalHalf string `json:"critical_half"`
	// DominantPhase is the ledger category contributing the most seconds
	// to the straggler's NodeTime (among Other and the categories of its
	// critical half), with DominantSeconds its contribution.
	DominantPhase   string  `json:"dominant_phase"`
	DominantSeconds float64 `json:"dominant_seconds"`
	// TotalBarrierWait sums every rank's final-barrier idle time — the
	// load-imbalance cost a perfect balancer would reclaim.
	TotalBarrierWait float64 `json:"total_barrier_wait"`

	Ranks []RankPath `json:"ranks"`

	// TopOps, when span data was available, ranks the straggler's
	// critical-half (plus Other) span ops by accumulated seconds.
	TopOps []OpSeconds `json:"top_ops,omitempty"`
	// DroppedSpans counts tracer spans dropped to the storage cap; when
	// non-zero, TopOps undercounts (ledger fields stay exact) and the
	// analyzer appends a warning.
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
	// Warnings carries caveats about the attribution itself.
	Warnings []string `json:"warnings,omitempty"`
}

// halfName classifies a rank's critical half.
func halfName(sync, async float64) string {
	switch {
	case sync > async:
		return "sync"
	case async > sync:
		return "async"
	}
	return "tie"
}

// AnalyzeBreakdowns attributes the makespan across ranks and phases from
// the per-rank virtual-time ledgers alone. Returns nil for an empty input.
func AnalyzeBreakdowns(bds []cluster.Breakdown) *CriticalPath {
	if len(bds) == 0 {
		return nil
	}
	cp := &CriticalPath{Straggler: -1, Ranks: make([]RankPath, len(bds))}
	for i, bd := range bds {
		rp := RankPath{
			Rank:        i,
			SyncComm:    bd.SyncComm,
			SyncComp:    bd.SyncComp,
			SyncOverlap: bd.SyncOverlap,
			AsyncComm:   bd.AsyncComm,
			AsyncComp:   bd.AsyncComp,
			Other:       bd.Other,
			Checkpoint:  bd.Checkpoint,
			Recovery:    bd.Recovery,
			SyncHalf:    bd.SyncComm + bd.SyncComp - bd.SyncOverlap,
			AsyncHalf:   bd.AsyncComm + bd.AsyncComp,
			NodeTime:    bd.NodeTime(),
		}
		rp.CriticalHalf = halfName(rp.SyncHalf, rp.AsyncHalf)
		if rp.NodeTime > cp.Makespan {
			cp.Makespan = rp.NodeTime
			cp.Straggler = i
		}
		cp.Ranks[i] = rp
	}
	if cp.Straggler < 0 {
		cp.Straggler = 0 // all-zero ledgers: rank 0 by convention
	}
	for i := range cp.Ranks {
		rp := &cp.Ranks[i]
		rp.BarrierWait = cp.Makespan - rp.NodeTime
		rp.Critical = i == cp.Straggler
		cp.TotalBarrierWait += rp.BarrierWait
	}

	s := cp.Ranks[cp.Straggler]
	cp.CriticalHalf = s.CriticalHalf
	cp.DominantPhase, cp.DominantSeconds = dominantPhase(s)
	return cp
}

// dominantPhase picks the largest contribution to the straggler's NodeTime
// among Other and the categories of its critical half. Overlap is a credit,
// not a phase: it shrinks the sync half but can never dominate it.
func dominantPhase(s RankPath) (string, float64) {
	type cand struct {
		name string
		v    float64
	}
	cands := []cand{{cluster.Other.String(), s.Other}}
	// Checkpoint and Recovery are serial with both halves, like Other, so
	// they are candidates regardless of which half is critical.
	if s.Checkpoint > 0 {
		cands = append(cands, cand{cluster.Checkpoint.String(), s.Checkpoint})
	}
	if s.Recovery > 0 {
		cands = append(cands, cand{cluster.Recovery.String(), s.Recovery})
	}
	if s.CriticalHalf != "async" { // sync or tie
		cands = append(cands,
			cand{cluster.SyncComm.String(), s.SyncComm},
			cand{cluster.SyncComp.String(), s.SyncComp})
	}
	if s.CriticalHalf != "sync" { // async or tie
		cands = append(cands,
			cand{cluster.AsyncComm.String(), s.AsyncComm},
			cand{cluster.AsyncComp.String(), s.AsyncComp})
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.v > best.v {
			best = c
		}
	}
	return best.name, best.v
}

// criticalCategories returns the ledger categories that lie on the
// straggler's critical path (its critical half plus the serial-additive
// Other, Checkpoint, and Recovery).
func criticalCategories(half string) []cluster.Category {
	cats := []cluster.Category{cluster.Other, cluster.Checkpoint, cluster.Recovery}
	if half != "async" {
		cats = append(cats, cluster.SyncComm, cluster.SyncComp)
	}
	if half != "sync" {
		cats = append(cats, cluster.AsyncComm, cluster.AsyncComp)
	}
	return cats
}

// maxTopOps bounds the per-op attribution list in reports and tables.
const maxTopOps = 8

// CriticalPath analyzes the tracer's recorded run: the ledger-level
// attribution from the span totals (identical to AnalyzeBreakdowns on the
// run's Breakdowns, since span totals tile the ledger exactly), enriched
// with a per-op ranking of the straggler's critical-half spans. Returns nil
// if the tracer saw no ranks.
func (t *Tracer) CriticalPath() *CriticalPath {
	cp := AnalyzeBreakdowns(t.Totals())
	if cp == nil {
		return nil
	}
	cp.DroppedSpans = t.TotalDropped()
	if cp.DroppedSpans > 0 {
		cp.Warnings = append(cp.Warnings, fmt.Sprintf(
			"tracer dropped %d spans at its storage cap; per-op attribution is incomplete (ledger totals stay exact) — raise the span cap to capture all ops",
			cp.DroppedSpans))
	}

	wanted := map[cluster.Category]bool{}
	for _, cat := range criticalCategories(cp.CriticalHalf) {
		wanted[cat] = true
	}
	byOp := map[string]*OpSeconds{}
	for _, sp := range t.Spans() {
		if sp.Rank != cp.Straggler || !wanted[sp.Cat] {
			continue
		}
		key := sp.Op
		if o, ok := byOp[key]; ok {
			o.Seconds += sp.End - sp.Start
			continue
		}
		byOp[key] = &OpSeconds{Op: sp.Op, Cat: sp.Cat, CatName: sp.Cat.String(), Seconds: sp.End - sp.Start}
	}
	ops := make([]OpSeconds, 0, len(byOp))
	for _, o := range byOp {
		ops = append(ops, *o)
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Seconds != ops[j].Seconds {
			return ops[i].Seconds > ops[j].Seconds
		}
		return ops[i].Op < ops[j].Op
	})
	if len(ops) > maxTopOps {
		ops = ops[:maxTopOps]
	}
	cp.TopOps = ops
	return cp
}

// Table renders the attribution as an aligned human-readable report — the
// output of twoface-run -explain.
func (cp *CriticalPath) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path: rank %d (%s half), makespan %.4g s\n",
		cp.Straggler, cp.CriticalHalf, cp.Makespan)
	fmt.Fprintf(&sb, "dominant phase: %s (%.4g s, %.0f%% of makespan)\n",
		cp.DominantPhase, cp.DominantSeconds, 100*safeFrac(cp.DominantSeconds, cp.Makespan))
	fmt.Fprintf(&sb, "barrier wait (idle behind the straggler): %.4g s total across %d ranks\n",
		cp.TotalBarrierWait, len(cp.Ranks))
	// The Checkpoint/Recovery columns appear only on runs that used them,
	// keeping fault-free tables identical to previous releases.
	showRecov := false
	for _, rp := range cp.Ranks {
		if rp.Checkpoint != 0 || rp.Recovery != 0 {
			showRecov = true
			break
		}
	}
	recovHdr, recovRow := "", ""
	fmt.Fprintf(&sb, "  %4s  %10s %10s %10s %10s %10s %10s", "rank", "SyncComm", "SyncComp", "Overlap", "AsyncComm", "AsyncComp", "Other")
	if showRecov {
		recovHdr = fmt.Sprintf(" %10s %10s", "Checkpoint", "Recovery")
	}
	fmt.Fprintf(&sb, "%s | %10s %10s %10s %10s  %s\n", recovHdr, "syncHalf", "asyncHalf", "nodeTime", "barrier", "critical")
	for _, rp := range cp.Ranks {
		mark := ""
		if rp.Critical {
			mark = "<-- " + rp.CriticalHalf
		} else {
			mark = rp.CriticalHalf
		}
		fmt.Fprintf(&sb, "  %4d  %10.3g %10.3g %10.3g %10.3g %10.3g %10.3g",
			rp.Rank, rp.SyncComm, rp.SyncComp, rp.SyncOverlap, rp.AsyncComm, rp.AsyncComp, rp.Other)
		if showRecov {
			recovRow = fmt.Sprintf(" %10.3g %10.3g", rp.Checkpoint, rp.Recovery)
		}
		fmt.Fprintf(&sb, "%s | %10.3g %10.3g %10.3g %10.3g  %s\n",
			recovRow, rp.SyncHalf, rp.AsyncHalf, rp.NodeTime, rp.BarrierWait, mark)
	}
	if len(cp.TopOps) > 0 {
		fmt.Fprintf(&sb, "top ops on rank %d's critical path:\n", cp.Straggler)
		for _, o := range cp.TopOps {
			fmt.Fprintf(&sb, "  %-28s %-10s %10.4g s (%.0f%%)\n",
				o.Op, o.CatName, o.Seconds, 100*safeFrac(o.Seconds, cp.Makespan))
		}
	}
	for _, w := range cp.Warnings {
		fmt.Fprintf(&sb, "warning: %s\n", w)
	}
	return sb.String()
}

// Reconciles verifies the attribution against the ledgers it claims to
// represent: every per-rank field equal bit-for-bit and the makespan equal
// to the max node time. The -explain path asserts this before printing.
func (cp *CriticalPath) Reconciles(bds []cluster.Breakdown) error {
	if len(bds) != len(cp.Ranks) {
		return fmt.Errorf("obs: attribution covers %d ranks, ledgers have %d", len(cp.Ranks), len(bds))
	}
	var max float64
	for i, bd := range bds {
		rp := cp.Ranks[i]
		if rp.SyncComm != bd.SyncComm || rp.SyncComp != bd.SyncComp ||
			rp.SyncOverlap != bd.SyncOverlap || rp.AsyncComm != bd.AsyncComm ||
			rp.AsyncComp != bd.AsyncComp || rp.Other != bd.Other ||
			rp.Checkpoint != bd.Checkpoint || rp.Recovery != bd.Recovery {
			return fmt.Errorf("obs: rank %d attribution diverges from its ledger", i)
		}
		if rp.NodeTime != bd.NodeTime() {
			return fmt.Errorf("obs: rank %d node time %g != ledger %g", i, rp.NodeTime, bd.NodeTime())
		}
		if t := bd.NodeTime(); t > max {
			max = t
		}
	}
	if cp.Makespan != max {
		return fmt.Errorf("obs: attribution makespan %g != ledger max %g", cp.Makespan, max)
	}
	return nil
}

func safeFrac(num, den float64) float64 {
	if den == 0 || math.IsNaN(den) {
		return 0
	}
	return num / den
}
