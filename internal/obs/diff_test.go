package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twoface/internal/cluster"
)

func findRow(t *testing.T, d *Diff, metric string) DiffRow {
	t.Helper()
	for _, r := range d.Rows {
		if r.Metric == metric {
			return r
		}
	}
	t.Fatalf("diff has no row %q; rows: %+v", metric, d.Rows)
	return DiffRow{}
}

// TestDiffVerdicts checks the classification rules: lower-is-better modeled
// metrics regress/improve past the tight threshold, direction-neutral ones
// only "change", and wall-clock noise inside the generous threshold is ok.
func TestDiffVerdicts(t *testing.T) {
	oldR := &Report{
		ModeledSeconds: 1.0,
		WallSeconds:    1.0,
		Breakdown:      cluster.Breakdown{SyncComm: 0.4, SyncOverlap: 0.1},
		Transfer:       cluster.TransferStats{OneSidedBytes: 1000},
	}
	newR := &Report{
		ModeledSeconds: 1.1, // +10%: regression
		WallSeconds:    1.2, // +20%: inside the 25% wall threshold
		Breakdown:      cluster.Breakdown{SyncComm: 0.4, SyncOverlap: 0.2},
		Transfer:       cluster.TransferStats{OneSidedBytes: 500},
	}
	d := CompareReports(oldR, newR, DiffOptions{})

	if r := findRow(t, d, "modeled_seconds"); r.Verdict != VerdictRegressed {
		t.Errorf("modeled_seconds verdict = %s, want regressed", r.Verdict)
	}
	if r := findRow(t, d, "wall_seconds"); r.Verdict != VerdictOK {
		t.Errorf("wall_seconds verdict = %s, want ok (20%% < the 25%% wall threshold)", r.Verdict)
	}
	if r := findRow(t, d, "breakdown.sync_comm"); r.Verdict != VerdictOK {
		t.Errorf("unchanged sync_comm verdict = %s, want ok", r.Verdict)
	}
	if r := findRow(t, d, "breakdown.sync_overlap"); r.Verdict != VerdictChanged {
		t.Errorf("sync_overlap verdict = %s, want changed (more overlap hidden is not a regression)", r.Verdict)
	}
	if r := findRow(t, d, "transfer.one_sided_bytes"); r.Verdict != VerdictImproved {
		t.Errorf("one_sided_bytes verdict = %s, want improved", r.Verdict)
	}
	if d.Regressions != 1 {
		t.Errorf("regressions = %d, want 1", d.Regressions)
	}

	out := d.String()
	if !strings.Contains(out, "modeled_seconds") || !strings.Contains(out, "regressed") {
		t.Errorf("rendered diff hides the regression:\n%s", out)
	}
	if strings.Contains(out, "breakdown.sync_comm ") {
		t.Errorf("rendered diff should fold ok rows into the summary line:\n%s", out)
	}
}

// TestDiffCounters checks metric-snapshot counters diff as a union: rows for
// added and removed names, ok for the unchanged.
func TestDiffCounters(t *testing.T) {
	oldR := &Report{Metrics: &Snapshot{Counters: map[string]int64{"exec.sync.panels": 10, "gone": 4}}}
	newR := &Report{Metrics: &Snapshot{Counters: map[string]int64{"exec.sync.panels": 10, "fresh": 2}}}
	d := CompareReports(oldR, newR, DiffOptions{})

	if r := findRow(t, d, "counter.gone"); r.Verdict != VerdictRemoved || r.Old != 4 {
		t.Errorf("removed counter row = %+v", r)
	}
	if r := findRow(t, d, "counter.fresh"); r.Verdict != VerdictAdded || r.New != 2 {
		t.Errorf("added counter row = %+v", r)
	}
	if r := findRow(t, d, "counter.exec.sync.panels"); r.Verdict != VerdictOK {
		t.Errorf("unchanged counter verdict = %s, want ok", r.Verdict)
	}
	if d.Regressions != 0 {
		t.Errorf("regressions = %d, want 0 (counters are direction-neutral)", d.Regressions)
	}
}

// TestDiffNotes checks the non-numeric observations: mismatched config keys
// and a moved straggler/dominant phase each produce a note.
func TestDiffNotes(t *testing.T) {
	oldR := &Report{
		Config:       map[string]any{"k": 128, "p": 8},
		CriticalPath: &CriticalPath{Straggler: 0, DominantPhase: "SyncComp", TotalBarrierWait: 0.1},
	}
	newR := &Report{
		Config:       map[string]any{"k": 192, "p": 8},
		CriticalPath: &CriticalPath{Straggler: 3, DominantPhase: "AsyncComm", TotalBarrierWait: 0.1},
	}
	d := CompareReports(oldR, newR, DiffOptions{})

	joined := strings.Join(d.Notes, "\n")
	for _, want := range []string{
		`config "k" differs: 128 vs 192`,
		"straggler moved: rank 0 -> rank 3",
		"dominant phase moved: SyncComp -> AsyncComm",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, `config "p"`) {
		t.Errorf("matching config key noted as differing:\n%s", joined)
	}
	if r := findRow(t, d, "critical_path.barrier_wait"); r.Verdict != VerdictOK {
		t.Errorf("equal barrier wait verdict = %s, want ok", r.Verdict)
	}
}

// TestCompareFiles checks the file loader: a plain report on one side, a
// trajectory array on the other (last entry wins), plus the error paths.
func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, v any) string {
		t.Helper()
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	oldPath := write("old.json", &Report{ModeledSeconds: 1.0})
	newPath := write("new.json", []*Report{
		{ModeledSeconds: 5.0}, // stale entry, must be ignored
		{ModeledSeconds: 2.0},
	})
	d, err := CompareFiles(oldPath, newPath, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OldPath != oldPath || d.NewPath != newPath {
		t.Errorf("paths not recorded: %q %q", d.OldPath, d.NewPath)
	}
	r := findRow(t, d, "modeled_seconds")
	if r.Old != 1.0 || r.New != 2.0 || r.Verdict != VerdictRegressed {
		t.Errorf("trajectory comparison used the wrong entry: %+v", r)
	}

	if _, err := CompareFiles(oldPath, filepath.Join(dir, "missing.json"), DiffOptions{}); err == nil {
		t.Error("missing file accepted")
	}
	empty := write("empty.json", []*Report{})
	if _, err := CompareFiles(oldPath, empty, DiffOptions{}); err == nil {
		t.Error("empty trajectory accepted")
	}
	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareFiles(oldPath, garbled, DiffOptions{}); err == nil {
		t.Error("garbled file accepted")
	}
}
