// Package chaos is the deterministic fault-injection subsystem of the
// simulated cluster: seeded, reproducible fault plans that perturb the
// virtual-time machine the way a real Slingshot-class fabric misbehaves at
// scale — straggling nodes and links, transient one-sided get failures,
// delayed or lost multicast legs, and outright rank crashes.
//
// A Plan is pure data (JSON-serializable, hand-writable); Plan.Injector
// compiles it into the cluster.FaultInjector the runtime consults on every
// charge and transfer. Determinism is the design center: fault decisions
// are pure functions of the plan seed and a transfer's stable identity
// (origin, target, offset, size, attempt number) — never of goroutine
// scheduling — so the same seed replays the same faults, the same retry
// and degradation counts, and the same modeled-time inflation, no matter
// how the host interleaves the simulation.
package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"twoface/internal/cluster"
)

// Straggler slows one rank down by a multiplicative factor.
type Straggler struct {
	// Rank is the afflicted node. Ranks outside the cluster are ignored,
	// so one plan can serve a node-count sweep.
	Rank int `json:"rank"`
	// Factor multiplies the rank's charges (> 1 slows it; must be > 0).
	Factor float64 `json:"factor"`
}

// GetFault afflicts a deterministic subset of one-sided gets with
// transient failures. A get is identified by (origin, target, first region
// offset, total elements); it is afflicted when the seeded hash of that
// identity falls below Prob. An afflicted get's first Fails attempts fail
// (the rank retries with backoff charged to virtual time); if Fails
// reaches the retry budget the get exhausts it and the caller degrades to
// the synchronous fallback path.
type GetFault struct {
	// Origin restricts the fault to gets issued by this rank; -1 = any.
	Origin int `json:"origin"`
	// Target restricts the fault to gets reading from this rank; -1 = any.
	Target int `json:"target"`
	// Prob is the probability a matching get is afflicted, in [0, 1].
	Prob float64 `json:"prob"`
	// Fails is how many consecutive attempts of an afflicted get fail
	// (default 1). Set it at or above the retry budget's MaxAttempts to
	// force degradation.
	Fails int `json:"fails,omitempty"`
	// Delay adds virtual seconds to the afflicted get's first successful
	// attempt (a straggling link rather than a hard failure).
	Delay float64 `json:"delay,omitempty"`
}

// LegFault afflicts multicast legs: the per-destination pulls of the
// collective multicast tree. Identity is (destination, root, offset,
// elements), hashed like GetFault. Because the collective path is the
// machine's reliable substrate (and the degradation fallback), a leg whose
// Fails reaches the retry budget aborts the run — keep Fails below
// MaxAttempts for survivable plans.
type LegFault struct {
	// Origin restricts the fault to this destination rank; -1 = any.
	Origin int `json:"origin"`
	// Root restricts the fault to multicasts rooted at this rank; -1 = any.
	Root int `json:"root"`
	// Prob is the probability a matching leg is afflicted, in [0, 1].
	Prob float64 `json:"prob"`
	// Fails is how many consecutive pull attempts of an afflicted leg fail
	// (default 1).
	Fails int `json:"fails,omitempty"`
	// Delay adds virtual seconds to the afflicted leg (charged to
	// SyncComm), modeling a straggling tree edge.
	Delay float64 `json:"delay,omitempty"`
	// Before, when positive, is a virtual-time trigger: only legs issued
	// while the destination's SyncComm clock is below Before are
	// afflicted. The sync transfer thread is sequential per rank, so this
	// trigger is deterministic.
	Before float64 `json:"before,omitempty"`
}

// Crash kills a rank once its virtual clock (modeled NodeTime) passes At.
// What happens next depends on the cluster's mode. Fail-clean (the
// default): the crashed rank fails its next transfer or barrier with
// cluster.ErrCrashed, which aborts the whole run; peers observe
// cluster.ErrAborted instead of hanging. Fail-recover
// (cluster.SetRecovery, twoface-run -recover): the death becomes a
// membership transition and the survivors re-execute the dead rank's
// unfinished work from its last checkpoint, so the run still completes.
// A plan with crashes is never Survivable — completing it requires
// recovery mode; see Recoverable.
type Crash struct {
	Rank int     `json:"rank"`
	At   float64 `json:"at"`
}

// Plan is a seeded, deterministic fault plan for one simulated cluster.
// The zero value is a healthy machine. Plans are pure data: serialize them
// with encoding/json (twoface-run's -fault-plan flag loads that form), or
// build them programmatically.
type Plan struct {
	// Seed drives every probabilistic decision in the plan. Two runs with
	// the same plan (seed included) inject identical faults.
	Seed uint64 `json:"seed"`

	// ComputeStragglers multiply the afflicted ranks' compute charges
	// (SyncComp, AsyncComp).
	ComputeStragglers []Straggler `json:"compute_stragglers,omitempty"`
	// NetworkStragglers multiply the afflicted ranks' communication
	// charges (SyncComm, AsyncComm), including retry backoff.
	NetworkStragglers []Straggler `json:"network_stragglers,omitempty"`

	// Gets are the transient one-sided failure specs.
	Gets []GetFault `json:"gets,omitempty"`
	// Legs are the multicast-leg failure/delay specs.
	Legs []LegFault `json:"legs,omitempty"`
	// Crashes are hard rank deaths at virtual times.
	Crashes []Crash `json:"crashes,omitempty"`

	// Retry overrides the cluster's retry policy; zero fields take the
	// cluster defaults (4 attempts, 1e-5 s base backoff, x2 growth).
	Retry cluster.RetryPolicy `json:"retry"`
}

// Validate checks the plan's internal consistency. Rank indices may exceed
// any particular cluster's size (they are simply inert there), so a single
// plan can serve a node-count sweep; negative ranks are only legal as the
// -1 wildcards of the fault specs.
func (p *Plan) Validate() error {
	for _, s := range p.ComputeStragglers {
		if err := validateStraggler("compute", s); err != nil {
			return err
		}
	}
	for _, s := range p.NetworkStragglers {
		if err := validateStraggler("network", s); err != nil {
			return err
		}
	}
	for i, g := range p.Gets {
		if g.Origin < -1 || g.Target < -1 {
			return fmt.Errorf("chaos: gets[%d]: origin/target must be >= -1", i)
		}
		if g.Prob < 0 || g.Prob > 1 {
			return fmt.Errorf("chaos: gets[%d]: prob %v outside [0,1]", i, g.Prob)
		}
		if g.Fails < 0 || g.Delay < 0 {
			return fmt.Errorf("chaos: gets[%d]: fails and delay must be >= 0", i)
		}
	}
	for i, l := range p.Legs {
		if l.Origin < -1 || l.Root < -1 {
			return fmt.Errorf("chaos: legs[%d]: origin/root must be >= -1", i)
		}
		if l.Prob < 0 || l.Prob > 1 {
			return fmt.Errorf("chaos: legs[%d]: prob %v outside [0,1]", i, l.Prob)
		}
		if l.Fails < 0 || l.Delay < 0 || l.Before < 0 {
			return fmt.Errorf("chaos: legs[%d]: fails, delay, and before must be >= 0", i)
		}
	}
	for i, c := range p.Crashes {
		if c.Rank < 0 {
			return fmt.Errorf("chaos: crashes[%d]: rank must be >= 0", i)
		}
		if c.At <= 0 {
			return fmt.Errorf("chaos: crashes[%d]: crash time must be > 0", i)
		}
	}
	if p.Retry.MaxAttempts < 0 || p.Retry.BaseBackoff < 0 || p.Retry.Multiplier < 0 {
		return fmt.Errorf("chaos: retry policy fields must be >= 0")
	}
	return nil
}

func validateStraggler(kind string, s Straggler) error {
	if s.Rank < 0 {
		return fmt.Errorf("chaos: %s straggler rank %d must be >= 0", kind, s.Rank)
	}
	if s.Factor <= 0 {
		return fmt.Errorf("chaos: %s straggler on rank %d: factor %v must be > 0", kind, s.Rank, s.Factor)
	}
	return nil
}

// Survivable reports whether every algorithm completes under this plan:
// no crashes, and no multicast leg that can outlast the retry budget (the
// one-sided path always survives — exhausted gets degrade to the
// synchronous fallback). Survivable plans are the ones whose runs must be
// bit-exact with the fault-free run.
func (p *Plan) Survivable() bool {
	if len(p.Crashes) > 0 {
		return false
	}
	budget := p.Retry.Normalize().MaxAttempts
	for _, l := range p.Legs {
		fails := l.Fails
		if fails == 0 {
			fails = 1
		}
		if fails >= budget {
			return false
		}
	}
	return true
}

// Recoverable reports whether a fail-recover run on a cluster of the given
// rank count completes under this plan: every multicast leg stays within the
// retry budget (as in Survivable), and the crashes leave at least one rank
// alive to recover the others' work. Crashes aimed at ranks outside the
// cluster are inert and don't count. A Survivable plan is trivially
// recoverable.
func (p *Plan) Recoverable(ranks int) bool {
	budget := p.Retry.Normalize().MaxAttempts
	for _, l := range p.Legs {
		fails := l.Fails
		if fails == 0 {
			fails = 1
		}
		if fails >= budget {
			return false
		}
	}
	crashed := map[int]bool{}
	for _, c := range p.Crashes {
		if c.Rank < ranks {
			crashed[c.Rank] = true
		}
	}
	return len(crashed) < ranks
}

// Parse decodes a JSON-encoded plan and validates it. Unknown fields are
// rejected so typos in hand-written plans fail loudly, and decode errors
// name the offending field or byte offset.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: parsing plan: %w", describeJSONError(err))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// describeJSONError rewraps encoding/json decode errors so hand-written
// plans fail with the offending field spelled out, not just a Go type.
func describeJSONError(err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) && typeErr.Field != "" {
		return fmt.Errorf("field %q: want %s, got %s", typeErr.Field, typeErr.Type, typeErr.Value)
	}
	var synErr *json.SyntaxError
	if errors.As(err, &synErr) {
		return fmt.Errorf("invalid JSON at byte %d: %w", synErr.Offset, err)
	}
	return err
}

// LoadFile reads and validates a JSON plan file (the twoface-run
// -fault-plan format).
func LoadFile(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return Parse(data)
}

// WriteFile stores the plan as indented JSON.
func (p *Plan) WriteFile(path string) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("chaos: encoding plan: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
