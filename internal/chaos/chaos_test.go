package chaos

import (
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"twoface/internal/cluster"
)

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"straggler factor zero", Plan{ComputeStragglers: []Straggler{{Rank: 0, Factor: 0}}}},
		{"straggler negative rank", Plan{NetworkStragglers: []Straggler{{Rank: -1, Factor: 2}}}},
		{"get prob above one", Plan{Gets: []GetFault{{Origin: -1, Target: -1, Prob: 1.5}}}},
		{"get origin below wildcard", Plan{Gets: []GetFault{{Origin: -2, Target: -1, Prob: 0.5}}}},
		{"get negative fails", Plan{Gets: []GetFault{{Origin: -1, Target: -1, Prob: 0.5, Fails: -1}}}},
		{"leg negative delay", Plan{Legs: []LegFault{{Origin: -1, Root: -1, Prob: 0.5, Delay: -1}}}},
		{"leg negative before", Plan{Legs: []LegFault{{Origin: -1, Root: -1, Prob: 0.5, Before: -1}}}},
		{"crash negative rank", Plan{Crashes: []Crash{{Rank: -1, At: 1}}}},
		{"crash at zero", Plan{Crashes: []Crash{{Rank: 0, At: 0}}}},
		{"negative retry", Plan{Retry: cluster.RetryPolicy{MaxAttempts: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", tc.plan)
			}
			if _, err := tc.plan.Injector(4); err == nil {
				t.Fatal("Injector must refuse an invalid plan")
			}
		})
	}
	if err := (&Plan{}).Validate(); err != nil {
		t.Fatalf("zero plan (healthy machine) must validate: %v", err)
	}
}

func TestSurvivable(t *testing.T) {
	if !(&Plan{}).Survivable() {
		t.Error("healthy plan must be survivable")
	}
	if (&Plan{Crashes: []Crash{{Rank: 0, At: 1}}}).Survivable() {
		t.Error("crash plans are never survivable")
	}
	// Get faults never make a plan unsurvivable: exhaustion degrades.
	if !(&Plan{Gets: []GetFault{{Origin: -1, Target: -1, Prob: 1, Fails: 100}}}).Survivable() {
		t.Error("get faults must stay survivable (they degrade)")
	}
	// Legs at the budget are fatal; below it they are fine.
	budget := (cluster.RetryPolicy{}).Normalize().MaxAttempts
	if (&Plan{Legs: []LegFault{{Origin: -1, Root: -1, Prob: 0.1, Fails: budget}}}).Survivable() {
		t.Error("leg fails at the retry budget must be unsurvivable")
	}
	if !(&Plan{Legs: []LegFault{{Origin: -1, Root: -1, Prob: 0.1, Fails: budget - 1}}}).Survivable() {
		t.Error("leg fails below the budget must be survivable")
	}
}

// TestInjectorDeterminism: fault verdicts are pure functions of the plan
// and the transfer identity — identical across injector instances and call
// orders — and flips with the seed.
func TestInjectorDeterminism(t *testing.T) {
	plan := RandomPlan(99, 8)
	inj1, err := plan.Injector(8)
	if err != nil {
		t.Fatal(err)
	}
	inj2, _ := plan.Injector(8)
	for origin := 0; origin < 8; origin++ {
		for target := 0; target < 8; target++ {
			for attempt := 1; attempt <= 5; attempt++ {
				a := inj1.GetAttempt(origin, target, 128, 4096, attempt)
				b := inj2.GetAttempt(origin, target, 128, 4096, attempt)
				if a != b {
					t.Fatalf("verdict differs across instances: %+v vs %+v", a, b)
				}
			}
		}
	}
	// A fresh plan with another seed must disagree somewhere.
	other, _ := RandomPlan(100, 8).Injector(8)
	diff := false
	for origin := 0; origin < 8 && !diff; origin++ {
		for target := 0; target < 8 && !diff; target++ {
			diff = inj1.GetAttempt(origin, target, 128, 4096, 1) != other.GetAttempt(origin, target, 128, 4096, 1)
		}
	}
	if !diff {
		t.Error("different seeds produced identical verdicts everywhere")
	}
}

// TestOutcomeShape: an afflicted transfer fails attempts 1..fails and
// absorbs its delay exactly once, on the first success.
func TestOutcomeShape(t *testing.T) {
	for attempt := 1; attempt <= 5; attempt++ {
		out := outcome(2, 7e-4, attempt)
		switch {
		case attempt <= 2:
			if !out.Fail {
				t.Errorf("attempt %d should fail", attempt)
			}
		case attempt == 3:
			if out.Fail || out.Delay != 7e-4 {
				t.Errorf("attempt 3 should succeed with the delay, got %+v", out)
			}
		default:
			if out.Fail || out.Delay != 0 {
				t.Errorf("attempt %d should be clean, got %+v", attempt, out)
			}
		}
	}
}

func TestScaleChargeMapping(t *testing.T) {
	plan := &Plan{
		ComputeStragglers: []Straggler{{Rank: 1, Factor: 2}},
		NetworkStragglers: []Straggler{{Rank: 1, Factor: 3}},
	}
	inj, err := plan.Injector(4)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		rank int
		cat  cluster.Category
		want float64
	}{
		{1, cluster.SyncComp, 2}, {1, cluster.AsyncComp, 2},
		{1, cluster.SyncComm, 3}, {1, cluster.AsyncComm, 3},
		{1, cluster.Other, 1},
		{0, cluster.SyncComp, 1}, {2, cluster.AsyncComm, 1},
		{-1, cluster.SyncComp, 1}, {9, cluster.SyncComp, 1}, // out of range: inert
	}
	for _, ck := range checks {
		if got := inj.ScaleCharge(ck.rank, ck.cat); got != ck.want {
			t.Errorf("ScaleCharge(%d, %v) = %v, want %v", ck.rank, ck.cat, got, ck.want)
		}
	}
}

func TestCrashCompilation(t *testing.T) {
	plan := &Plan{Crashes: []Crash{
		{Rank: 1, At: 2.0},
		{Rank: 1, At: 0.5}, // earliest wins
		{Rank: 7, At: 1.0}, // beyond the cluster: inert
	}}
	inj, err := plan.Injector(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.CrashTime(1); got != 0.5 {
		t.Errorf("CrashTime(1) = %v, want 0.5 (earliest)", got)
	}
	for _, r := range []int{0, 2, 3, 7, -1} {
		if got := inj.CrashTime(r); !math.IsInf(got, 1) {
			t.Errorf("CrashTime(%d) = %v, want +Inf", r, got)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	plan := RandomPlan(7, 8)
	plan.Crashes = []Crash{{Rank: 3, At: 0.25}}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := plan.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, got) {
		t.Fatalf("round trip changed the plan:\n  wrote %+v\n  read  %+v", plan, got)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"seed": 1, "typo_field": true}`)); err == nil {
		t.Fatal("unknown fields must be rejected")
	}
	if _, err := Parse([]byte(`{"seed": 1, "gets": [{"origin": -1, "target": -1, "prob": 2}]}`)); err == nil {
		t.Fatal("Parse must validate")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	} else if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

// TestRandomPlanProperties: RandomPlan is deterministic in its seed, always
// survivable, valid, and varies with the seed.
func TestRandomPlanProperties(t *testing.T) {
	for seed := uint64(1); seed <= 32; seed++ {
		p := RandomPlan(seed, 8)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
		if !p.Survivable() {
			t.Fatalf("seed %d: RandomPlan must be survivable: %+v", seed, p)
		}
		if !reflect.DeepEqual(p, RandomPlan(seed, 8)) {
			t.Fatalf("seed %d: RandomPlan not deterministic", seed)
		}
	}
	if reflect.DeepEqual(RandomPlan(1, 8), RandomPlan(2, 8)) {
		t.Error("different seeds produced the same plan")
	}
	// Must always carry a budget-exhausting get fault so the degradation
	// path gets exercised by the chaos harness.
	p := RandomPlan(5, 8)
	budget := p.Retry.Normalize().MaxAttempts
	exhausts := false
	for _, g := range p.Gets {
		if g.Fails >= budget {
			exhausts = true
		}
	}
	if !exhausts {
		t.Error("RandomPlan carries no budget-exhausting get fault")
	}
}

// TestRecoverable: a crash plan is recoverable while at least one rank
// survives, and leg faults past the budget stay fatal either way.
func TestRecoverable(t *testing.T) {
	if p := (&Plan{}); !p.Recoverable(4) {
		t.Error("healthy plan must be recoverable")
	}
	one := &Plan{Crashes: []Crash{{Rank: 1, At: 0.1}}}
	if one.Survivable() {
		t.Error("crash plan must not be survivable")
	}
	if !one.Recoverable(4) {
		t.Error("single crash on 4 ranks must be recoverable")
	}
	// In a 1-rank cluster the rank-1 crash is out of range and inert...
	if !one.Recoverable(1) {
		t.Error("out-of-range crash must be inert")
	}
	// ...but crashing the only rank there is leaves no survivor.
	if (&Plan{Crashes: []Crash{{Rank: 0, At: 0.1}}}).Recoverable(1) {
		t.Error("crashing the only rank must not be recoverable")
	}
	// Duplicate crashes of the same rank count once; out-of-range crashes
	// are inert (the plan-serves-a-sweep contract).
	dup := &Plan{Crashes: []Crash{{Rank: 0, At: 0.1}, {Rank: 0, At: 0.2}, {Rank: 99, At: 0.1}}}
	if !dup.Recoverable(2) {
		t.Error("one distinct in-range crash on 2 ranks must be recoverable")
	}
	all := &Plan{Crashes: []Crash{{Rank: 0, At: 0.1}, {Rank: 1, At: 0.1}}}
	if all.Recoverable(2) {
		t.Error("crashing every rank must not be recoverable")
	}
	// Collective legs beyond the retry budget abort regardless of recovery.
	leg := &Plan{Legs: []LegFault{{Origin: -1, Root: -1, Prob: 1, Fails: 99}}}
	if leg.Recoverable(4) {
		t.Error("budget-exhausting leg fault must not be recoverable")
	}
}

// TestRandomPlanWithCrash: the crash generator appends exactly one in-range
// recoverable crash and leaves the base plan's faults byte-identical.
func TestRandomPlanWithCrash(t *testing.T) {
	for seed := uint64(1); seed <= 16; seed++ {
		p := RandomPlanWithCrash(seed, 8)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
		if p.Survivable() {
			t.Fatalf("seed %d: crash plan must not be survivable", seed)
		}
		if !p.Recoverable(8) {
			t.Fatalf("seed %d: crash plan must be recoverable", seed)
		}
		if len(p.Crashes) != 1 {
			t.Fatalf("seed %d: want 1 crash, got %d", seed, len(p.Crashes))
		}
		if c := p.Crashes[0]; c.Rank < 0 || c.Rank >= 8 || c.At <= 0 {
			t.Fatalf("seed %d: crash %+v out of range", seed, c)
		}
		if !reflect.DeepEqual(p, RandomPlanWithCrash(seed, 8)) {
			t.Fatalf("seed %d: RandomPlanWithCrash not deterministic", seed)
		}
		// Stripping the crash must recover RandomPlan exactly: the crash
		// draws come from an independent stream.
		base := RandomPlan(seed, 8)
		stripped := *p
		stripped.Crashes = nil
		if !reflect.DeepEqual(&stripped, base) {
			t.Fatalf("seed %d: non-crash faults diverged from RandomPlan", seed)
		}
	}
}

// TestParseNamesOffendingField: hand-written plan typos come back with the
// JSON field (or byte offset) spelled out, not just a Go type name.
func TestParseNamesOffendingField(t *testing.T) {
	_, err := Parse([]byte(`{"seed": 1, "crashes": [{"rank": "one", "at": 0.5}]}`))
	if err == nil {
		t.Fatal("type mismatch must error")
	}
	if !strings.Contains(err.Error(), `"crashes.rank"`) {
		t.Errorf("error %q does not name the offending field", err)
	}
	_, err = Parse([]byte(`{"seed": 1,}`))
	if err == nil {
		t.Fatal("malformed JSON must error")
	}
	if !strings.Contains(err.Error(), "byte") {
		t.Errorf("error %q does not give the byte offset", err)
	}
}
