package chaos

// RandomPlan generates a survivable fault plan for a p-rank cluster,
// deterministic in seed: a compute straggler, a network straggler, a broad
// transient-get fault, a targeted get fault heavy enough to exhaust the
// retry budget (exercising the degradation path), and a sprinkle of
// delayed/failed multicast legs. It never emits crashes — survivable means
// every algorithm completes bit-exactly under the plan without recovery,
// the contract the chaos harness and scripts/chaos.sh sweep over seeds.
// RandomPlanWithCrash is the opt-in generator that adds a recoverable
// crash on top.
func RandomPlan(seed uint64, p int) *Plan {
	if p < 1 {
		p = 1
	}
	// A dedicated generator stream, independent of the plan's own seed use.
	s := splitmix64(seed ^ 0xc4a05eed5eed5eed)
	next := func() uint64 { s = splitmix64(s); return s }
	rank := func() int { return int(next() % uint64(p)) }
	span := func(lo, hi float64) float64 { return lo + unit(next())*(hi-lo) }

	pol := (Plan{}).Retry.Normalize() // the cluster defaults
	return &Plan{
		Seed: seed,
		ComputeStragglers: []Straggler{
			{Rank: rank(), Factor: span(1.2, 2.5)},
		},
		NetworkStragglers: []Straggler{
			{Rank: rank(), Factor: span(1.2, 2.0)},
		},
		Gets: []GetFault{
			// Broad transient flakiness: a slice of all gets fails once or
			// twice and recovers within the retry budget.
			{Origin: -1, Target: -1, Prob: span(0.05, 0.3), Fails: 1 + int(next()%2)},
			// A persistently unreachable target: afflicted gets exhaust
			// the budget and degrade to the synchronous fallback.
			{Origin: -1, Target: rank(), Prob: span(0.1, 0.4), Fails: pol.MaxAttempts},
		},
		Legs: []LegFault{
			// Straggling or once-lost multicast tree edges.
			{Origin: -1, Root: -1, Prob: span(0.05, 0.2), Fails: 1, Delay: span(1e-6, 1e-4)},
		},
	}
}

// RandomPlanWithCrash is RandomPlan plus one rank crash at a random early
// virtual time — a plan that is not Survivable but is Recoverable on any
// cluster with at least two ranks, for exercising the fail-recover path
// (twoface-run -chaos-crash). The crash draws come strictly after the base
// plan's, so for any seed the non-crash faults are byte-identical to
// RandomPlan's: a recovery run and its fail-clean twin disagree only about
// the crash itself.
func RandomPlanWithCrash(seed uint64, p int) *Plan {
	plan := RandomPlan(seed, p)
	if p < 1 {
		p = 1
	}
	// An independent generator stream keyed to the crash feature: the base
	// plan's draws stay byte-identical for every existing seed, and future
	// edits to RandomPlan cannot shift the crash draws (or vice versa).
	s := splitmix64(seed ^ 0xdead5eedc4a5ed00)
	next := func() uint64 { s = splitmix64(s); return s }
	rank := int(next() % uint64(p))
	// Early virtual times so the crash lands inside the run even on the
	// small scaled-down matrices the chaos sweep uses (their makespans are
	// a few tens of microseconds); a crash time beyond the rank's runtime
	// is simply a rank that lives, which exercises nothing.
	at := 2e-7 + unit(next())*(8e-6-2e-7)
	plan.Crashes = append(plan.Crashes, Crash{Rank: rank, At: at})
	return plan
}
