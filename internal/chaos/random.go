package chaos

// RandomPlan generates a survivable fault plan for a p-rank cluster,
// deterministic in seed: a compute straggler, a network straggler, a broad
// transient-get fault, a targeted get fault heavy enough to exhaust the
// retry budget (exercising the degradation path), and a sprinkle of
// delayed/failed multicast legs. No crashes and no leg can outlast the
// retry budget, so every algorithm must complete bit-exactly under it —
// the contract the chaos harness and scripts/chaos.sh sweep over seeds.
func RandomPlan(seed uint64, p int) *Plan {
	if p < 1 {
		p = 1
	}
	// A dedicated generator stream, independent of the plan's own seed use.
	s := splitmix64(seed ^ 0xc4a05eed5eed5eed)
	next := func() uint64 { s = splitmix64(s); return s }
	rank := func() int { return int(next() % uint64(p)) }
	span := func(lo, hi float64) float64 { return lo + unit(next())*(hi-lo) }

	pol := (Plan{}).Retry.Normalize() // the cluster defaults
	return &Plan{
		Seed: seed,
		ComputeStragglers: []Straggler{
			{Rank: rank(), Factor: span(1.2, 2.5)},
		},
		NetworkStragglers: []Straggler{
			{Rank: rank(), Factor: span(1.2, 2.0)},
		},
		Gets: []GetFault{
			// Broad transient flakiness: a slice of all gets fails once or
			// twice and recovers within the retry budget.
			{Origin: -1, Target: -1, Prob: span(0.05, 0.3), Fails: 1 + int(next()%2)},
			// A persistently unreachable target: afflicted gets exhaust
			// the budget and degrade to the synchronous fallback.
			{Origin: -1, Target: rank(), Prob: span(0.1, 0.4), Fails: pol.MaxAttempts},
		},
		Legs: []LegFault{
			// Straggling or once-lost multicast tree edges.
			{Origin: -1, Root: -1, Prob: span(0.05, 0.2), Fails: 1, Delay: span(1e-6, 1e-4)},
		},
	}
}
