package chaos

import (
	"fmt"
	"math"

	"twoface/internal/cluster"
	"twoface/internal/obs"
)

// Injector is a compiled Plan: the cluster.FaultInjector the runtime
// consults on every charge and transfer. It is immutable and safe for
// concurrent use by every rank's goroutines.
//
// Determinism: every decision is a pure function of (plan seed, spec
// index, transfer identity, attempt number). The set of transfers an
// algorithm issues is fixed by its schedule, so the multiset of injected
// faults — and therefore every retry count, degradation count, backoff
// charge, and delay charge — is identical across runs regardless of
// goroutine interleaving.
type Injector struct {
	plan         *Plan
	computeScale []float64 // per rank; missing ranks scale by 1
	networkScale []float64
	crashAt      []float64 // per rank; +Inf = never
}

// Injector compiles the plan for a cluster of the given size. Specs
// referencing ranks outside [0, ranks) are inert, so one plan can serve a
// node-count sweep.
func (p *Plan) Injector(ranks int) (*Injector, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("chaos: need at least 1 rank, got %d", ranks)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		plan:         p,
		computeScale: scaleVector(ranks, p.ComputeStragglers),
		networkScale: scaleVector(ranks, p.NetworkStragglers),
		crashAt:      make([]float64, ranks),
	}
	for i := range inj.crashAt {
		inj.crashAt[i] = math.Inf(1)
	}
	for _, c := range p.Crashes {
		if c.Rank < ranks && c.At < inj.crashAt[c.Rank] {
			inj.crashAt[c.Rank] = c.At
		}
	}
	obs.Logger().Info("chaos plan armed",
		"event", "chaos.armed",
		"seed", p.Seed,
		"ranks", ranks,
		"compute_stragglers", len(p.ComputeStragglers),
		"network_stragglers", len(p.NetworkStragglers),
		"get_faults", len(p.Gets),
		"leg_faults", len(p.Legs),
		"crashes", len(p.Crashes),
	)
	return inj, nil
}

func scaleVector(ranks int, specs []Straggler) []float64 {
	v := make([]float64, ranks)
	for i := range v {
		v[i] = 1
	}
	for _, s := range specs {
		if s.Rank < ranks {
			v[s.Rank] *= s.Factor
		}
	}
	return v
}

// Plan returns the source plan.
func (inj *Injector) Plan() *Plan { return inj.plan }

// ScaleCharge implements cluster.FaultInjector: compute categories stretch
// under the rank's compute straggler factor, communication categories
// under its network factor; Other is structural setup and stays put.
func (inj *Injector) ScaleCharge(rank int, cat cluster.Category) float64 {
	if rank < 0 || rank >= len(inj.computeScale) {
		return 1
	}
	switch cat {
	case cluster.SyncComp, cluster.AsyncComp:
		return inj.computeScale[rank]
	case cluster.SyncComm, cluster.AsyncComm:
		return inj.networkScale[rank]
	}
	return 1
}

// GetAttempt implements cluster.FaultInjector for one-sided gets. Each
// GetFault spec afflicts the get independently (hash keyed by spec index
// and get identity); afflicted specs' Fails add up, so overlapping specs
// compound. The attempt fails while attempt <= total fails; the first
// succeeding attempt absorbs the accumulated Delay.
func (inj *Injector) GetAttempt(origin, target int, firstOff, elems int64, attempt int) cluster.AttemptOutcome {
	var fails int
	var delay float64
	for i, g := range inj.plan.Gets {
		if !matches(g.Origin, origin) || !matches(g.Target, target) {
			continue
		}
		if g.Prob <= 0 {
			continue
		}
		h := mix(inj.plan.Seed, 'g', uint64(i), uint64(origin), uint64(target), uint64(firstOff), uint64(elems))
		if unit(h) >= g.Prob {
			continue
		}
		fails += failCount(g.Fails)
		delay += g.Delay
	}
	return outcome(fails, delay, attempt)
}

// LegAttempt implements cluster.FaultInjector for multicast legs.
// syncClock enables the Before virtual-time trigger, deterministic because
// the sync transfer thread is sequential per rank.
func (inj *Injector) LegAttempt(origin, root int, off, elems int64, syncClock float64, attempt int) cluster.AttemptOutcome {
	var fails int
	var delay float64
	for i, l := range inj.plan.Legs {
		if !matches(l.Origin, origin) || !matches(l.Root, root) {
			continue
		}
		if l.Prob <= 0 || (l.Before > 0 && syncClock >= l.Before) {
			continue
		}
		h := mix(inj.plan.Seed, 'l', uint64(i), uint64(origin), uint64(root), uint64(off), uint64(elems))
		if unit(h) >= l.Prob {
			continue
		}
		fails += failCount(l.Fails)
		delay += l.Delay
	}
	return outcome(fails, delay, attempt)
}

// CrashTime implements cluster.FaultInjector.
func (inj *Injector) CrashTime(rank int) float64 {
	if rank < 0 || rank >= len(inj.crashAt) {
		return math.Inf(1)
	}
	return inj.crashAt[rank]
}

// Retry implements cluster.FaultInjector.
func (inj *Injector) Retry() cluster.RetryPolicy { return inj.plan.Retry }

func matches(spec, got int) bool { return spec == -1 || spec == got }

func failCount(f int) int {
	if f <= 0 {
		return 1
	}
	return f
}

// outcome turns an afflicted transfer's (fails, delay) into the verdict
// for one attempt: attempts 1..fails fail; the first success (attempt
// fails+1) absorbs the delay exactly once.
func outcome(fails int, delay float64, attempt int) cluster.AttemptOutcome {
	if attempt <= fails {
		return cluster.AttemptOutcome{Fail: true}
	}
	if attempt == fails+1 && delay > 0 {
		return cluster.AttemptOutcome{Delay: delay}
	}
	return cluster.AttemptOutcome{}
}

// splitmix64 is the finalizer of the SplitMix64 generator — a strong,
// dependency-free 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds the values into one hash, order-sensitively.
func mix(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// unit maps a hash to [0, 1) with 53-bit precision.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
