package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"twoface"
	"twoface/internal/obs"
)

// Shared test fixture: two small resident plans, preprocessed once. The
// matrices differ so cross-plan traffic is distinguishable; reference
// products pin correctness.
var (
	fixtureOnce sync.Once
	fixtureReg  *Registry
	fixtureRef  map[string]map[uint64]*twoface.DenseMatrix // plan -> seed -> A x B(seed)
)

const fixtureK = 8

func fixture(t *testing.T) *Registry {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureReg = NewRegistry()
		fixtureRef = map[string]map[uint64]*twoface.DenseMatrix{}
		for i, name := range []string{"alpha", "beta"} {
			a := twoface.Generate("web", 0.04, uint64(7+i))
			sys, err := twoface.New(twoface.Options{Nodes: 2, DenseColumns: fixtureK})
			if err != nil {
				panic(err)
			}
			plan, err := sys.Preprocess(a)
			if err != nil {
				panic(err)
			}
			if err := fixtureReg.Add(&Resident{Name: name, Plan: plan, K: fixtureK, Source: "web:0.04"}); err != nil {
				panic(err)
			}
			fixtureRef[name] = map[uint64]*twoface.DenseMatrix{}
			for _, seed := range []uint64{1, 2} {
				b := twoface.RandomDense(plan.NumCols(), fixtureK, seed)
				want, err := twoface.Reference(a, b)
				if err != nil {
					panic(err)
				}
				fixtureRef[name][seed] = want
			}
		}
	})
	return fixtureReg
}

// startServer boots a server over the fixture registry with a clean metrics
// slate and tears it down with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	obs.Default.Reset()
	s := New(cfg, fixture(t))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// postJSON sends one multiply request and decodes the reply.
func postJSON(t *testing.T, addr string, req MultiplyRequest) (int, http.Header, *MultiplyResponse, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/multiply: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, resp.Header, nil, string(raw)
	}
	var mr MultiplyResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatalf("bad multiply response %q: %v", raw, err)
	}
	return resp.StatusCode, resp.Header, &mr, string(raw)
}

func seedReq(plan string, seed uint64) MultiplyRequest {
	s := seed
	return MultiplyRequest{Plan: plan, Seed: &s}
}

// TestMultiplyEndToEnd: a seed-addressed multiply returns the exact
// reference product (checksum and, with include_c, the full C), and a
// repeat of the same operand reuses the cross-run row cache.
func TestMultiplyEndToEnd(t *testing.T) {
	s := startServer(t, Config{})
	req := seedReq("alpha", 1)
	req.IncludeC = true
	code, _, mr, raw := postJSON(t, s.Addr(), req)
	if code != http.StatusOK {
		t.Fatalf("multiply = %d: %s", code, raw)
	}
	want := fixtureRef["alpha"][1]
	if mr.Rows != want.Rows || mr.K != want.Cols || len(mr.C) != len(want.Data) {
		t.Fatalf("result shape %dx%d (%d elems), want %dx%d", mr.Rows, mr.K, len(mr.C), want.Rows, want.Cols)
	}
	for i, v := range mr.C {
		if math.Abs(v-want.Data[i]) > 1e-9 {
			t.Fatalf("C[%d] = %g, want %g", i, v, want.Data[i])
		}
	}
	got := &twoface.DenseMatrix{Rows: mr.Rows, Cols: mr.K, Data: mr.C}
	if mr.Checksum != twoface.FingerprintDense(got) {
		t.Fatalf("checksum %d does not fingerprint the returned C", mr.Checksum)
	}
	if mr.Coalesced {
		t.Fatal("lone request marked coalesced")
	}

	// Same operand again: sequential duplicate → row-cache hits, not
	// coalescing.
	_, _, mr2, _ := postJSON(t, s.Addr(), seedReq("alpha", 1))
	if mr2.Checksum != mr.Checksum {
		t.Fatal("repeat request returned a different product")
	}
	if mr2.Coalesced {
		t.Fatal("sequential duplicate must not be coalesced")
	}
	if mr2.RowCacheHits == 0 {
		t.Fatal("repeat multiply on the same operand saw no row-cache hits")
	}
	if metricCoalesced.Value() != 0 {
		t.Fatal("sequential traffic bumped the coalesce counter")
	}
}

// TestBinaryOperand: the octet-stream encoding runs the same multiply as
// the JSON seed addressing of the identical operand.
func TestBinaryOperand(t *testing.T) {
	s := startServer(t, Config{})
	code, _, viaSeed, raw0 := postJSON(t, s.Addr(), seedReq("beta", 2))
	if code != http.StatusOK {
		t.Fatalf("seed-mode multiply = %d: %s", code, raw0)
	}
	res := fixture(t).Get("beta")
	b := twoface.RandomDense(res.Plan.NumCols(), fixtureK, 2)
	raw := make([]byte, 8*len(b.Data))
	for i, v := range b.Data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	resp, err := http.Post("http://"+s.Addr()+"/v1/multiply?plan=beta", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary multiply = %d: %s", resp.StatusCode, body)
	}
	var mr MultiplyResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Checksum != viaSeed.Checksum {
		t.Fatalf("binary multiply checksum %d, seed-mode checksum %d", mr.Checksum, viaSeed.Checksum)
	}

	// Truncated payload → 400, not a crash or a hung slot.
	resp2, err := http.Post("http://"+s.Addr()+"/v1/multiply?plan=beta", "application/octet-stream", bytes.NewReader(raw[:16]))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated binary operand = %d, want 400", resp2.StatusCode)
	}
}

// TestRequestValidation walks the 4xx surface.
func TestRequestValidation(t *testing.T) {
	s := startServer(t, Config{})
	cases := []struct {
		name string
		req  MultiplyRequest
		code int
	}{
		{"missing plan", MultiplyRequest{}, http.StatusBadRequest},
		{"unknown plan", seedReq("nope", 1), http.StatusNotFound},
		{"missing operand", MultiplyRequest{Plan: "alpha"}, http.StatusBadRequest},
		{"wrong length", MultiplyRequest{Plan: "alpha", B: []float64{1, 2, 3}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _, _, body := postJSON(t, s.Addr(), tc.req); code != tc.code {
			t.Errorf("%s: status %d want %d (%s)", tc.name, code, tc.code, body)
		}
	}
	if metricRequests.Value() != 0 {
		t.Fatalf("4xx traffic entered the outcome accounting: requests=%d", metricRequests.Value())
	}
	if metricBadRequests.Value() == 0 {
		t.Fatal("bad requests went uncounted")
	}
	// GET is not a multiply.
	resp, err := http.Get("http://" + s.Addr() + "/v1/multiply")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/multiply = %d, want 405", resp.StatusCode)
	}
}

// TestPlansEndpoint lists the residents with their dimensions.
func TestPlansEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	resp, err := http.Get("http://" + s.Addr() + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []PlanInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("plans = %+v", infos)
	}
	if infos[0].K != fixtureK || infos[0].Rows == 0 || infos[0].Prep.TotalNNZ == 0 {
		t.Fatalf("plan info incomplete: %+v", infos[0])
	}
}

// TestCoalescing: two concurrent identical requests run one execution; the
// follower's response carries the leader's result and the coalesced mark.
// Metrics separate the two (coalesced=1, exec=1, completed=2).
func TestCoalescing(t *testing.T) {
	s := startServer(t, Config{AllowHold: true})

	leader := seedReq("alpha", 1)
	leader.HoldMillis = 500
	type result struct {
		mr   *MultiplyResponse
		code int
	}
	leadCh := make(chan result, 1)
	go func() {
		code, _, mr, _ := postJSON(t, s.Addr(), leader)
		leadCh <- result{mr, code}
	}()
	waitFor(t, func() bool { return metricRequests.Value() == 1 })
	time.Sleep(20 * time.Millisecond) // leader is inside its hold window

	code, _, follower, raw := postJSON(t, s.Addr(), seedReq("alpha", 1))
	if code != http.StatusOK {
		t.Fatalf("follower = %d: %s", code, raw)
	}
	lead := <-leadCh
	if lead.code != http.StatusOK {
		t.Fatalf("leader = %d", lead.code)
	}
	if lead.mr.Coalesced {
		t.Fatal("leader marked coalesced")
	}
	if !follower.Coalesced {
		t.Fatal("follower not marked coalesced")
	}
	if follower.Checksum != lead.mr.Checksum {
		t.Fatal("follower got a different product than its leader")
	}
	if got := metricExecs.Value(); got != 1 {
		t.Fatalf("exec count = %d, want 1 (coalesced)", got)
	}
	if got := metricCoalesced.Value(); got != 1 {
		t.Fatalf("coalesced count = %d, want 1", got)
	}
	checkOutcomeIdentity(t)

	// A no_coalesce duplicate while another hold is in flight executes on
	// its own.
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), leader)
		leadCh <- result{nil, code}
	}()
	waitFor(t, func() bool { return metricRequests.Value() == 3 })
	time.Sleep(20 * time.Millisecond)
	solo := seedReq("alpha", 1)
	solo.NoCoalesce = true
	if code, _, mr, _ := postJSON(t, s.Addr(), solo); code != http.StatusOK || mr.Coalesced {
		t.Fatalf("no_coalesce duplicate: code=%d coalesced=%v", code, mr != nil && mr.Coalesced)
	}
	<-leadCh
	if got := metricCoalesced.Value(); got != 1 {
		t.Fatalf("no_coalesce request coalesced anyway (count %d)", got)
	}
}

// TestCoalescedFollowerSeesLeaderError: with the lone slot blocked, a
// leader whose queue deadline expires sheds — and its follower sheds with
// it, observing the leader's error rather than hanging or executing.
func TestCoalescedFollowerSeesLeaderError(t *testing.T) {
	s := startServer(t, Config{AllowHold: true, MaxInFlight: 1, MaxQueue: 4})

	blocker := seedReq("beta", 2)
	blocker.HoldMillis = 1500
	blockCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), blocker)
		blockCh <- code
	}()
	waitFor(t, func() bool { return metricRequests.Value() == 1 })
	time.Sleep(20 * time.Millisecond) // blocker holds the slot

	leader := seedReq("alpha", 1)
	leader.QueueTimeoutMillis = 300
	leadCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), leader)
		leadCh <- code
	}()
	waitFor(t, func() bool { return metricRequests.Value() == 2 })
	time.Sleep(20 * time.Millisecond) // leader is queued on the slot

	fCode, fHdr, _, fBody := postJSON(t, s.Addr(), seedReq("alpha", 1))
	lCode := <-leadCh
	if lCode != http.StatusTooManyRequests {
		t.Fatalf("queue-deadline leader = %d, want 429", lCode)
	}
	if fCode != http.StatusTooManyRequests {
		t.Fatalf("follower of shed leader = %d, want 429 (%s)", fCode, fBody)
	}
	if fHdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if code := <-blockCh; code != http.StatusOK {
		t.Fatalf("blocker = %d", code)
	}
	if got := metricShed.Value(); got != 2 {
		t.Fatalf("shed count = %d, want 2 (leader + follower)", got)
	}
	if got := metricExecs.Value(); got != 1 {
		t.Fatalf("exec count = %d, want 1 (only the blocker ran)", got)
	}
	checkOutcomeIdentity(t)
}

// TestSaturationSheds: a burst far beyond capacity sheds with 429 instead
// of building an unbounded backlog; the queue's high-water mark respects
// MaxQueue, successes stay correct, and the outcome counters partition the
// traffic exactly.
func TestSaturationSheds(t *testing.T) {
	s := startServer(t, Config{AllowHold: true, MaxInFlight: 1, MaxQueue: 2, QueueTimeout: 5 * time.Second})
	const burst = 12
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := seedReq("alpha", uint64(i)) // distinct operands: no coalescing
			req.NoCoalesce = true
			req.HoldMillis = 100
			code, _, mr, _ := postJSON(t, s.Addr(), req)
			codes[i] = code
			if code == http.StatusOK && mr.Checksum == 0 {
				t.Errorf("request %d: zero checksum on success", i)
			}
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d in saturation burst", c)
		}
	}
	if shed == 0 {
		t.Fatal("saturation burst shed nothing")
	}
	if ok < 3 { // the slot holder plus the two queued
		t.Fatalf("only %d requests completed, want >= 3", ok)
	}
	if hw := s.QueueHighWater(); hw > 2 {
		t.Fatalf("queue high water %d exceeds MaxQueue 2", hw)
	}
	if int(metricCompleted.Value()) != ok || int(metricShed.Value()) != shed {
		t.Fatalf("metrics disagree with observed outcomes: completed=%d/%d shed=%d/%d",
			metricCompleted.Value(), ok, metricShed.Value(), shed)
	}
	checkOutcomeIdentity(t)
}

// TestShutdownDrains: in-flight work completes, a queued request is 503'd,
// and post-drain connections are refused — SIGTERM cannot strand a client
// without an answer.
func TestShutdownDrains(t *testing.T) {
	s := startServer(t, Config{AllowHold: true, MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 10 * time.Second})

	inflight := seedReq("alpha", 1)
	inflight.HoldMillis = 400
	inCh := make(chan *MultiplyResponse, 1)
	go func() {
		_, _, mr, _ := postJSON(t, s.Addr(), inflight)
		inCh <- mr
	}()
	waitFor(t, func() bool { return metricRequests.Value() == 1 })
	time.Sleep(20 * time.Millisecond)

	queued := seedReq("beta", 2)
	qCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), queued)
		qCh <- code
	}()
	waitFor(t, func() bool { return metricRequests.Value() == 2 })
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if mr := <-inCh; mr == nil || mr.Checksum == 0 {
		t.Fatal("in-flight multiply did not complete across shutdown")
	}
	if code := <-qCh; code != http.StatusServiceUnavailable {
		t.Fatalf("queued request at shutdown = %d, want 503", code)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("listener alive after Shutdown")
	}
	if got := metricDrained.Value(); got != 1 {
		t.Fatalf("drained count = %d, want 1", got)
	}
	checkOutcomeIdentity(t)
}

// TestOperandCacheBounded: the per-resident operand cache reuses matrices
// and never exceeds its cap.
func TestOperandCacheBounded(t *testing.T) {
	res := fixture(t).Get("alpha")
	b1 := res.Operand(99)
	if res.Operand(99) != b1 {
		t.Fatal("same seed returned a different operand")
	}
	for seed := uint64(0); seed < 2*maxCachedOperands; seed++ {
		res.Operand(seed)
	}
	res.opMu.Lock()
	n := len(res.operands)
	res.opMu.Unlock()
	if n > maxCachedOperands {
		t.Fatalf("operand cache grew to %d, cap %d", n, maxCachedOperands)
	}
}

// TestMetricsExposed: the serving counters surface through the ops /metrics
// exposition mounted on the same listener.
func TestMetricsExposed(t *testing.T) {
	s := startServer(t, Config{})
	postJSON(t, s.Addr(), seedReq("alpha", 1))
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"serve_requests_total 1",
		"serve_completed_total 1",
		"serve_exec_total 1",
		"serve_plan_alpha_requests_total 1",
		"serve_tenant_default_requests_total 1",
		"# TYPE serve_latency_seconds histogram",
		"# EOF",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// checkOutcomeIdentity asserts the metric partition documented in
// metrics.go: every admitted request landed in exactly one outcome bucket.
func checkOutcomeIdentity(t *testing.T) {
	t.Helper()
	req := metricRequests.Value()
	sum := metricCompleted.Value() + metricShed.Value() + metricDrained.Value() + metricFailed.Value()
	if req != sum {
		t.Fatalf("outcome identity broken: requests=%d but completed+shed+drained+failed=%d "+
			"(completed=%d shed=%d drained=%d failed=%d)",
			req, sum, metricCompleted.Value(), metricShed.Value(), metricDrained.Value(), metricFailed.Value())
	}
}
