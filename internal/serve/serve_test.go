package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"twoface"
	"twoface/internal/obs"
)

// Shared test fixture: two small resident plans, preprocessed once. The
// matrices differ so cross-plan traffic is distinguishable; reference
// products pin correctness.
var (
	fixtureOnce sync.Once
	fixtureReg  *Registry
	fixtureRef  map[string]map[uint64]*twoface.DenseMatrix // plan -> seed -> A x B(seed)
)

const fixtureK = 8

func fixture(t *testing.T) *Registry {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureReg = NewRegistry()
		fixtureRef = map[string]map[uint64]*twoface.DenseMatrix{}
		for i, name := range []string{"alpha", "beta"} {
			a := twoface.Generate("web", 0.04, uint64(7+i))
			sys, err := twoface.New(twoface.Options{Nodes: 2, DenseColumns: fixtureK})
			if err != nil {
				panic(err)
			}
			plan, err := sys.Preprocess(a)
			if err != nil {
				panic(err)
			}
			if err := fixtureReg.Add(&Resident{Name: name, Plan: plan, K: fixtureK, Source: "web:0.04"}); err != nil {
				panic(err)
			}
			fixtureRef[name] = map[uint64]*twoface.DenseMatrix{}
			for _, seed := range []uint64{1, 2} {
				b := twoface.RandomDense(plan.NumCols(), fixtureK, seed)
				want, err := twoface.Reference(a, b)
				if err != nil {
					panic(err)
				}
				fixtureRef[name][seed] = want
			}
		}
	})
	return fixtureReg
}

// startServer boots a server over the fixture registry with a clean metrics
// slate and tears it down with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	obs.Default.Reset()
	s := New(cfg, fixture(t))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// postJSON sends one multiply request and decodes the reply.
func postJSON(t *testing.T, addr string, req MultiplyRequest) (int, http.Header, *MultiplyResponse, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/multiply: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, resp.Header, nil, string(raw)
	}
	var mr MultiplyResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatalf("bad multiply response %q: %v", raw, err)
	}
	return resp.StatusCode, resp.Header, &mr, string(raw)
}

func seedReq(plan string, seed uint64) MultiplyRequest {
	s := seed
	return MultiplyRequest{Plan: plan, Seed: &s}
}

// TestMultiplyEndToEnd: a seed-addressed multiply returns the exact
// reference product (checksum and, with include_c, the full C), and a
// repeat of the same operand reuses the cross-run row cache.
func TestMultiplyEndToEnd(t *testing.T) {
	s := startServer(t, Config{})
	req := seedReq("alpha", 1)
	req.IncludeC = true
	code, _, mr, raw := postJSON(t, s.Addr(), req)
	if code != http.StatusOK {
		t.Fatalf("multiply = %d: %s", code, raw)
	}
	want := fixtureRef["alpha"][1]
	if mr.Rows != want.Rows || mr.K != want.Cols || len(mr.C) != len(want.Data) {
		t.Fatalf("result shape %dx%d (%d elems), want %dx%d", mr.Rows, mr.K, len(mr.C), want.Rows, want.Cols)
	}
	for i, v := range mr.C {
		if math.Abs(v-want.Data[i]) > 1e-9 {
			t.Fatalf("C[%d] = %g, want %g", i, v, want.Data[i])
		}
	}
	got := &twoface.DenseMatrix{Rows: mr.Rows, Cols: mr.K, Data: mr.C}
	if mr.Checksum != twoface.FingerprintDense(got) {
		t.Fatalf("checksum %d does not fingerprint the returned C", mr.Checksum)
	}
	if mr.Coalesced {
		t.Fatal("lone request marked coalesced")
	}

	// Same operand again: sequential duplicate → row-cache hits, not
	// coalescing.
	_, _, mr2, _ := postJSON(t, s.Addr(), seedReq("alpha", 1))
	if mr2.Checksum != mr.Checksum {
		t.Fatal("repeat request returned a different product")
	}
	if mr2.Coalesced {
		t.Fatal("sequential duplicate must not be coalesced")
	}
	if mr2.RowCacheHits == 0 {
		t.Fatal("repeat multiply on the same operand saw no row-cache hits")
	}
	if metricCoalesced.Value() != 0 {
		t.Fatal("sequential traffic bumped the coalesce counter")
	}
}

// TestBinaryOperand: the octet-stream encoding runs the same multiply as
// the JSON seed addressing of the identical operand.
func TestBinaryOperand(t *testing.T) {
	s := startServer(t, Config{})
	code, _, viaSeed, raw0 := postJSON(t, s.Addr(), seedReq("beta", 2))
	if code != http.StatusOK {
		t.Fatalf("seed-mode multiply = %d: %s", code, raw0)
	}
	res := fixture(t).Get("beta")
	b := twoface.RandomDense(res.Plan.NumCols(), fixtureK, 2)
	raw := make([]byte, 8*len(b.Data))
	for i, v := range b.Data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	resp, err := http.Post("http://"+s.Addr()+"/v1/multiply?plan=beta", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary multiply = %d: %s", resp.StatusCode, body)
	}
	var mr MultiplyResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Checksum != viaSeed.Checksum {
		t.Fatalf("binary multiply checksum %d, seed-mode checksum %d", mr.Checksum, viaSeed.Checksum)
	}

	// A parameterized Content-Type still selects binary mode: only the
	// media type matters, not its parameters.
	resp3, err := http.Post("http://"+s.Addr()+"/v1/multiply?plan=beta",
		"application/octet-stream; charset=binary", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("parameterized octet-stream multiply = %d: %s", resp3.StatusCode, body3)
	}
	var mr3 MultiplyResponse
	if err := json.Unmarshal(body3, &mr3); err != nil {
		t.Fatal(err)
	}
	if mr3.Checksum != viaSeed.Checksum {
		t.Fatalf("parameterized binary checksum %d, seed-mode checksum %d", mr3.Checksum, viaSeed.Checksum)
	}

	// Truncated payload → 400, not a crash or a hung slot.
	resp2, err := http.Post("http://"+s.Addr()+"/v1/multiply?plan=beta", "application/octet-stream", bytes.NewReader(raw[:16]))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated binary operand = %d, want 400", resp2.StatusCode)
	}
}

// TestRequestValidation walks the 4xx surface.
func TestRequestValidation(t *testing.T) {
	s := startServer(t, Config{})
	cases := []struct {
		name string
		req  MultiplyRequest
		code int
	}{
		{"missing plan", MultiplyRequest{}, http.StatusBadRequest},
		{"unknown plan", seedReq("nope", 1), http.StatusNotFound},
		{"missing operand", MultiplyRequest{Plan: "alpha"}, http.StatusBadRequest},
		{"wrong length", MultiplyRequest{Plan: "alpha", B: []float64{1, 2, 3}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _, _, body := postJSON(t, s.Addr(), tc.req); code != tc.code {
			t.Errorf("%s: status %d want %d (%s)", tc.name, code, tc.code, body)
		}
	}
	if metricRequests.Value() != 0 {
		t.Fatalf("4xx traffic entered the outcome accounting: requests=%d", metricRequests.Value())
	}
	if metricBadRequests.Value() == 0 {
		t.Fatal("bad requests went uncounted")
	}
	// GET is not a multiply.
	resp, err := http.Get("http://" + s.Addr() + "/v1/multiply")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/multiply = %d, want 405", resp.StatusCode)
	}
}

// TestPlansEndpoint lists the residents with their dimensions.
func TestPlansEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	resp, err := http.Get("http://" + s.Addr() + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []PlanInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("plans = %+v", infos)
	}
	if infos[0].K != fixtureK || infos[0].Rows == 0 || infos[0].Prep.TotalNNZ == 0 {
		t.Fatalf("plan info incomplete: %+v", infos[0])
	}
}

// TestCoalescing: two concurrent identical requests run one execution; the
// follower's response carries the leader's result and the coalesced mark.
// Metrics separate the two (coalesced=1, exec=1, completed=2).
func TestCoalescing(t *testing.T) {
	s := startServer(t, Config{AllowHold: true})

	leader := seedReq("alpha", 1)
	leader.HoldMillis = 500
	type result struct {
		mr   *MultiplyResponse
		code int
	}
	leadCh := make(chan result, 1)
	go func() {
		code, _, mr, _ := postJSON(t, s.Addr(), leader)
		leadCh <- result{mr, code}
	}()
	// The leader owns its admission slot — and is therefore inside its hold
	// window — once the inflight gauge ticks up; its flight was registered
	// before it entered admission, so a duplicate arriving now coalesces.
	waitFor(t, func() bool { return metricInflight.Value() == 1 })

	code, _, follower, raw := postJSON(t, s.Addr(), seedReq("alpha", 1))
	if code != http.StatusOK {
		t.Fatalf("follower = %d: %s", code, raw)
	}
	lead := <-leadCh
	if lead.code != http.StatusOK {
		t.Fatalf("leader = %d", lead.code)
	}
	if lead.mr.Coalesced {
		t.Fatal("leader marked coalesced")
	}
	if !follower.Coalesced {
		t.Fatal("follower not marked coalesced")
	}
	if follower.Checksum != lead.mr.Checksum {
		t.Fatal("follower got a different product than its leader")
	}
	if got := metricExecs.Value(); got != 1 {
		t.Fatalf("exec count = %d, want 1 (coalesced)", got)
	}
	if got := metricCoalesced.Value(); got != 1 {
		t.Fatalf("coalesced count = %d, want 1", got)
	}
	checkOutcomeIdentity(t)

	// A no_coalesce duplicate while another hold is in flight executes on
	// its own.
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), leader)
		leadCh <- result{nil, code}
	}()
	waitFor(t, func() bool { return metricRequests.Value() == 3 })
	// The new leader owns its slot (the earlier traffic has fully released).
	waitFor(t, func() bool { return metricInflight.Value() == 1 })
	solo := seedReq("alpha", 1)
	solo.NoCoalesce = true
	if code, _, mr, _ := postJSON(t, s.Addr(), solo); code != http.StatusOK || mr.Coalesced {
		t.Fatalf("no_coalesce duplicate: code=%d coalesced=%v", code, mr != nil && mr.Coalesced)
	}
	<-leadCh
	if got := metricCoalesced.Value(); got != 1 {
		t.Fatalf("no_coalesce request coalesced anyway (count %d)", got)
	}
}

// TestCoalescedFollowerSeesLeaderError: with the lone slot blocked, a
// leader whose server-wide queue deadline expires sheds — and its follower
// sheds with it, observing the leader's error rather than hanging or
// executing. (The deadline here is the server's, a shared condition; a
// leader-only failure re-elects instead — see the re-election tests.)
func TestCoalescedFollowerSeesLeaderError(t *testing.T) {
	s := startServer(t, Config{AllowHold: true, MaxInFlight: 1, MaxQueue: 4,
		QueueTimeout: 300 * time.Millisecond})

	blocker := seedReq("beta", 2)
	blocker.HoldMillis = 1500
	blockCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), blocker)
		blockCh <- code
	}()
	// The blocker owns the lone slot once the inflight gauge ticks up.
	waitFor(t, func() bool { return metricInflight.Value() == 1 })

	leader := seedReq("alpha", 1)
	leadCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), leader)
		leadCh <- code
	}()
	// The leader is parked in the admission queue once the depth gauge
	// ticks up; its flight is already joinable.
	waitFor(t, func() bool { return metricQueueDepth.Value() == 1 })

	fCode, fHdr, _, fBody := postJSON(t, s.Addr(), seedReq("alpha", 1))
	lCode := <-leadCh
	if lCode != http.StatusTooManyRequests {
		t.Fatalf("queue-deadline leader = %d, want 429", lCode)
	}
	if fCode != http.StatusTooManyRequests {
		t.Fatalf("follower of shed leader = %d, want 429 (%s)", fCode, fBody)
	}
	if fHdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if code := <-blockCh; code != http.StatusOK {
		t.Fatalf("blocker = %d", code)
	}
	if got := metricShed.Value(); got != 2 {
		t.Fatalf("shed count = %d, want 2 (leader + follower)", got)
	}
	if got := metricExecs.Value(); got != 1 {
		t.Fatalf("exec count = %d, want 1 (only the blocker ran)", got)
	}
	checkOutcomeIdentity(t)
}

// TestLeaderDeadlineReElection: a leader that shed only because of its own
// self-shortened queue_timeout_ms must not shed its followers — the flight
// is abandoned and a follower re-elects itself leader and completes.
func TestLeaderDeadlineReElection(t *testing.T) {
	s := startServer(t, Config{AllowHold: true, MaxInFlight: 1, MaxQueue: 4})

	blocker := seedReq("beta", 2)
	blocker.HoldMillis = 700
	blockCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), blocker)
		blockCh <- code
	}()
	// The blocker owns the lone slot once the inflight gauge ticks up.
	waitFor(t, func() bool { return metricInflight.Value() == 1 })

	leader := seedReq("alpha", 1)
	leader.QueueTimeoutMillis = 200 // leader-only: shorter than the server's 2s
	leadCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), leader)
		leadCh <- code
	}()
	// The leader is parked in the admission queue once the depth gauge
	// ticks up; its flight is already joinable.
	waitFor(t, func() bool { return metricQueueDepth.Value() == 1 })

	fCode, _, follower, fBody := postJSON(t, s.Addr(), seedReq("alpha", 1))
	lCode := <-leadCh
	if lCode != http.StatusTooManyRequests {
		t.Fatalf("self-deadlined leader = %d, want 429", lCode)
	}
	if fCode != http.StatusOK {
		t.Fatalf("follower of self-deadlined leader = %d, want 200 (%s)", fCode, fBody)
	}
	if follower.Coalesced {
		t.Fatal("re-elected follower marked coalesced: it executed itself")
	}
	if follower.Checksum != twoface.FingerprintDense(fixtureRef["alpha"][1]) {
		t.Fatal("re-elected follower returned the wrong product")
	}
	if code := <-blockCh; code != http.StatusOK {
		t.Fatalf("blocker = %d", code)
	}
	if got := metricShed.Value(); got != 1 {
		t.Fatalf("shed count = %d, want 1 (leader only)", got)
	}
	if got := metricExecs.Value(); got != 2 {
		t.Fatalf("exec count = %d, want 2 (blocker + re-elected follower)", got)
	}
	checkOutcomeIdentity(t)
}

// TestClientGoneLeaderReElection: a leader whose client disconnects while
// queued abandons the flight; the follower re-elects and completes instead
// of inheriting a failure for a client that is still connected.
func TestClientGoneLeaderReElection(t *testing.T) {
	s := startServer(t, Config{AllowHold: true, MaxInFlight: 1, MaxQueue: 4})

	blocker := seedReq("beta", 2)
	blocker.HoldMillis = 600
	blockCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), blocker)
		blockCh <- code
	}()
	// The blocker owns the lone slot once the inflight gauge ticks up.
	waitFor(t, func() bool { return metricInflight.Value() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(seedReq("alpha", 1))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+s.Addr()+"/v1/multiply", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	leadCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leadCh <- err
	}()
	// The leader is parked in the admission queue once the depth gauge
	// ticks up; its flight is already joinable.
	waitFor(t, func() bool { return metricQueueDepth.Value() == 1 })

	fCh := make(chan struct {
		code int
		mr   *MultiplyResponse
	}, 1)
	go func() {
		code, _, mr, _ := postJSON(t, s.Addr(), seedReq("alpha", 1))
		fCh <- struct {
			code int
			mr   *MultiplyResponse
		}{code, mr}
	}()
	waitFor(t, func() bool { return metricCoalesced.Value() == 1 })
	cancel() // leader's client goes away while queued
	if err := <-leadCh; err == nil {
		t.Fatal("canceled leader request reported success")
	}

	f := <-fCh
	if f.code != http.StatusOK {
		t.Fatalf("follower of disconnected leader = %d, want 200", f.code)
	}
	if f.mr.Coalesced {
		t.Fatal("re-elected follower marked coalesced: it executed itself")
	}
	if f.mr.Checksum != twoface.FingerprintDense(fixtureRef["alpha"][1]) {
		t.Fatal("re-elected follower returned the wrong product")
	}
	if code := <-blockCh; code != http.StatusOK {
		t.Fatalf("blocker = %d", code)
	}
	// The leader's handler finishes asynchronously with its client's error.
	waitFor(t, func() bool { return metricFailed.Value() == 1 })
	if got := metricExecs.Value(); got != 2 {
		t.Fatalf("exec count = %d, want 2 (blocker + re-elected follower)", got)
	}
	checkOutcomeIdentity(t)
}

// TestNearDuplicateDoesNotCoalesce is the regression test for keying
// coalescing on the sampled row-cache fingerprint: two concurrent inline-B
// requests whose operands differ only in an element the 17-probe
// fingerprint never samples must each receive their own product, not share
// one execution.
func TestNearDuplicateDoesNotCoalesce(t *testing.T) {
	s := startServer(t, Config{AllowHold: true})
	res := fixture(t).Get("alpha")
	cols := res.Plan.NumCols()

	b1 := twoface.RandomDense(cols, fixtureK, 5)
	b2 := &twoface.DenseMatrix{Rows: cols, Cols: fixtureK, Data: append([]float64(nil), b1.Data...)}
	n := len(b2.Data)
	step := n / 16
	if step < 2 {
		t.Fatalf("operand too small (%d elems) to have unsampled elements", n)
	}
	b2.Data[1] += 1 // index 1 is never probed when step >= 2
	if twoface.FingerprintDense(b1) != twoface.FingerprintDense(b2) {
		t.Fatal("test premise broken: sampled fingerprints differ for the near-duplicate")
	}

	lead := MultiplyRequest{Plan: "alpha", B: b1.Data, HoldMillis: 400}
	leadCh := make(chan *MultiplyResponse, 1)
	go func() {
		_, _, mr, _ := postJSON(t, s.Addr(), lead)
		leadCh <- mr
	}()
	// The leader owns its admission slot — and is therefore inside its hold
	// window — once the inflight gauge ticks up; its flight was registered
	// before it entered admission, so a duplicate arriving now coalesces.
	waitFor(t, func() bool { return metricInflight.Value() == 1 })

	code, _, near, raw := postJSON(t, s.Addr(), MultiplyRequest{Plan: "alpha", B: b2.Data, IncludeC: true})
	if code != http.StatusOK {
		t.Fatalf("near-duplicate = %d: %s", code, raw)
	}
	if near.Coalesced {
		t.Fatal("near-duplicate coalesced onto a different operand's execution")
	}
	if <-leadCh == nil {
		t.Fatal("leader failed")
	}
	if got := metricExecs.Value(); got != 2 {
		t.Fatalf("exec count = %d, want 2 (distinct operands must both run)", got)
	}
	if got := metricCoalesced.Value(); got != 0 {
		t.Fatalf("coalesced count = %d, want 0", got)
	}
	// The near-duplicate's C is the product of ITS operand, not the leader's.
	a := twoface.Generate("web", 0.04, 7)
	want, err := twoface.Reference(a, b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(near.C) != len(want.Data) {
		t.Fatalf("near-duplicate returned %d elements, want %d", len(near.C), len(want.Data))
	}
	for i, v := range near.C {
		if math.Abs(v-want.Data[i]) > 1e-9 {
			t.Fatalf("near-duplicate C[%d] = %g, want %g (got another request's product?)", i, v, want.Data[i])
		}
	}
}

// TestCoalescerCollisionFallsBackToSolo: a full-hash collision between
// bitwise-unequal operands must degrade to solo execution, never to
// sharing a flight.
func TestCoalescerCollisionFallsBackToSolo(t *testing.T) {
	c := newCoalescer()
	key := flightKey{plan: "p", id: 42, elems: 3}
	b1 := []float64{1, 2, 3}
	fl, leader := c.join(key, b1)
	if fl == nil || !leader {
		t.Fatal("first join must lead a fresh flight")
	}
	// Same key, different bits: simulated 64-bit hash collision.
	fl2, leader2 := c.join(key, []float64{1, 2, 4})
	if fl2 != nil || !leader2 {
		t.Fatalf("collision join = (%v, %v), want solo execution (nil flight, leader)", fl2, leader2)
	}
	// A genuinely identical operand still coalesces.
	fl3, leader3 := c.join(key, append([]float64(nil), b1...))
	if fl3 != fl || leader3 {
		t.Fatal("identical operand failed to join the flight")
	}
	c.settle(key, fl, nil, nil, false)
	<-fl.done
}

// TestTenantMetricsBounded: client-supplied tenant names cannot grow the
// metric registry without bound — past the cap, traffic folds into the
// shared overflow counter.
func TestTenantMetricsBounded(t *testing.T) {
	planMetricsMu.Lock()
	saved := tenantCounter
	tenantCounter = map[string]*obs.Counter{}
	planMetricsMu.Unlock()
	t.Cleanup(func() {
		planMetricsMu.Lock()
		tenantCounter = saved
		planMetricsMu.Unlock()
	})
	before := tenantOverflow.Value()
	for i := 0; i < 4*maxTenantMetrics; i++ {
		tenantRequests(fmt.Sprintf("tenant-%d", i)).Inc()
	}
	planMetricsMu.Lock()
	n := len(tenantCounter)
	planMetricsMu.Unlock()
	if n > maxTenantMetrics {
		t.Fatalf("tenant counter map grew to %d, cap %d", n, maxTenantMetrics)
	}
	if got := tenantOverflow.Value() - before; got != int64(3*maxTenantMetrics) {
		t.Fatalf("overflow counter absorbed %d requests, want %d", got, 3*maxTenantMetrics)
	}
	// A tenant registered before the cap keeps its own counter afterwards.
	if tenantRequests("tenant-0") == tenantOverflow {
		t.Fatal("pre-cap tenant folded into overflow")
	}
}

// TestSaturationSheds: a burst far beyond capacity sheds with 429 instead
// of building an unbounded backlog; the queue's high-water mark respects
// MaxQueue, successes stay correct, and the outcome counters partition the
// traffic exactly.
func TestSaturationSheds(t *testing.T) {
	s := startServer(t, Config{AllowHold: true, MaxInFlight: 1, MaxQueue: 2, QueueTimeout: 5 * time.Second})
	const burst = 12
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := seedReq("alpha", uint64(i)) // distinct operands: no coalescing
			req.NoCoalesce = true
			req.HoldMillis = 100
			code, _, mr, _ := postJSON(t, s.Addr(), req)
			codes[i] = code
			if code == http.StatusOK && mr.Checksum == 0 {
				t.Errorf("request %d: zero checksum on success", i)
			}
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d in saturation burst", c)
		}
	}
	if shed == 0 {
		t.Fatal("saturation burst shed nothing")
	}
	if ok < 3 { // the slot holder plus the two queued
		t.Fatalf("only %d requests completed, want >= 3", ok)
	}
	if hw := s.QueueHighWater(); hw > 2 {
		t.Fatalf("queue high water %d exceeds MaxQueue 2", hw)
	}
	if int(metricCompleted.Value()) != ok || int(metricShed.Value()) != shed {
		t.Fatalf("metrics disagree with observed outcomes: completed=%d/%d shed=%d/%d",
			metricCompleted.Value(), ok, metricShed.Value(), shed)
	}
	// Gauges move by atomic deltas, so after the burst fully settles both
	// must read exactly zero — no stale value from an interleaved update.
	if v := metricInflight.Value(); v != 0 {
		t.Fatalf("inflight gauge = %g after burst, want 0", v)
	}
	if v := metricQueueDepth.Value(); v != 0 {
		t.Fatalf("queue depth gauge = %g after burst, want 0", v)
	}
	checkOutcomeIdentity(t)
}

// TestShutdownDrains: in-flight work completes, a queued request is 503'd,
// and post-drain connections are refused — SIGTERM cannot strand a client
// without an answer.
func TestShutdownDrains(t *testing.T) {
	s := startServer(t, Config{AllowHold: true, MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 10 * time.Second})

	inflight := seedReq("alpha", 1)
	inflight.HoldMillis = 400
	inCh := make(chan *MultiplyResponse, 1)
	go func() {
		_, _, mr, _ := postJSON(t, s.Addr(), inflight)
		inCh <- mr
	}()
	// The in-flight multiply owns the lone slot.
	waitFor(t, func() bool { return metricInflight.Value() == 1 })

	queued := seedReq("beta", 2)
	qCh := make(chan int, 1)
	go func() {
		code, _, _, _ := postJSON(t, s.Addr(), queued)
		qCh <- code
	}()
	// The second request is parked in the admission queue; shutdown must
	// answer it with 503, not strand it.
	waitFor(t, func() bool { return metricQueueDepth.Value() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if mr := <-inCh; mr == nil || mr.Checksum == 0 {
		t.Fatal("in-flight multiply did not complete across shutdown")
	}
	if code := <-qCh; code != http.StatusServiceUnavailable {
		t.Fatalf("queued request at shutdown = %d, want 503", code)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("listener alive after Shutdown")
	}
	if got := metricDrained.Value(); got != 1 {
		t.Fatalf("drained count = %d, want 1", got)
	}
	checkOutcomeIdentity(t)
}

// TestOperandCacheBounded: the per-resident operand cache reuses matrices
// and never exceeds its cap.
func TestOperandCacheBounded(t *testing.T) {
	res := fixture(t).Get("alpha")
	b1 := res.Operand(99)
	if res.Operand(99) != b1 {
		t.Fatal("same seed returned a different operand")
	}
	for seed := uint64(0); seed < 2*maxCachedOperands; seed++ {
		res.Operand(seed)
	}
	res.opMu.Lock()
	n := len(res.operands)
	res.opMu.Unlock()
	if n > maxCachedOperands {
		t.Fatalf("operand cache grew to %d, cap %d", n, maxCachedOperands)
	}
}

// TestMetricsExposed: the serving counters surface through the ops /metrics
// exposition mounted on the same listener.
func TestMetricsExposed(t *testing.T) {
	s := startServer(t, Config{})
	postJSON(t, s.Addr(), seedReq("alpha", 1))
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"serve_requests_total 1",
		"serve_completed_total 1",
		"serve_exec_total 1",
		"serve_plan_alpha_requests_total 1",
		"serve_tenant_default_requests_total 1",
		"# TYPE serve_latency_seconds histogram",
		"# EOF",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// checkOutcomeIdentity asserts the metric partition documented in
// metrics.go: every admitted request landed in exactly one outcome bucket.
func checkOutcomeIdentity(t *testing.T) {
	t.Helper()
	req := metricRequests.Value()
	sum := metricCompleted.Value() + metricShed.Value() + metricDrained.Value() + metricFailed.Value()
	if req != sum {
		t.Fatalf("outcome identity broken: requests=%d but completed+shed+drained+failed=%d "+
			"(completed=%d shed=%d drained=%d failed=%d)",
			req, sum, metricCompleted.Value(), metricShed.Value(), metricDrained.Value(), metricFailed.Value())
	}
}
