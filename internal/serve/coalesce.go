package serve

import "sync"

// Request coalescing: concurrent multiplies of the same (plan, B) pair are
// one unit of work. The first request in becomes the leader and executes;
// identical requests arriving while it is in flight become followers and
// wait on the leader's outcome — result and error alike — without consuming
// an admission slot. The key reuses the executor's cross-run B-identity
// fingerprint (core.FingerprintData, DESIGN.md section 8), so "identical"
// means precisely what the row cache means by "same B": coalescing collapses
// concurrent duplicates, the row cache accelerates sequential ones, and the
// metrics keep the two distinguishable (serve.coalesced vs
// serve.rowcache.hits).

// flightKey identifies one unit of multiply work.
type flightKey struct {
	plan  string
	fp    uint64 // FingerprintDense of the operand
	elems int    // operand length, guarding fingerprint collisions across shapes
}

// flight is one in-progress execution plus everyone waiting on it. The
// leader writes res/err and then closes done; followers read only after
// <-done, which is the happens-before edge.
type flight struct {
	done chan struct{}
	res  *execOutcome
	err  error

	followers int64 // guarded by the coalescer mutex until done closes
}

// coalescer tracks in-flight executions by key.
type coalescer struct {
	mu       sync.Mutex
	inflight map[flightKey]*flight
}

func newCoalescer() *coalescer {
	return &coalescer{inflight: map[flightKey]*flight{}}
}

// join returns the flight for key and whether the caller is its leader. A
// leader must eventually call settle exactly once.
func (c *coalescer) join(key flightKey) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.inflight[key]; ok {
		f.followers++
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return f, true
}

// settle publishes the leader's outcome to every follower and retires the
// key. Removal precedes publication: a duplicate arriving after settle
// starts a fresh flight rather than receiving a stale result, and every
// follower that joined before removal observes exactly this outcome —
// including the error path, so a shed or failed leader sheds or fails its
// whole cohort.
func (c *coalescer) settle(key flightKey, f *flight, res *execOutcome, err error) {
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// followerCount reports how many followers shared the flight; call only
// after the flight settled (the count is frozen once the key is removed...
// and new joins are impossible).
func (f *flight) followerCount() int64 {
	return f.followers
}
