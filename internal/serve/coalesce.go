package serve

import (
	"math"
	"sync"
)

// Request coalescing: concurrent multiplies of the same (plan, B) pair are
// one unit of work. The first request in becomes the leader and executes;
// identical requests arriving while it is in flight become followers and
// wait on the leader's outcome — result and error alike — without consuming
// an admission slot.
//
// "Identical" must mean exact operand identity here, which is a stricter
// bar than the row cache's heuristic: the cross-run fingerprint
// (core.FingerprintData) samples ~17 elements, which is fine for detecting
// in-place mutation of one caller's buffer but not for equating two
// *different* clients' operands — a collision would silently hand a
// follower the product of someone else's B. The flight key therefore uses
// exact identity: seed-addressed operands key on the seed itself (the
// server materializes the operand deterministically, so seed equality is
// operand equality), and inline/octet-stream operands key on a full-content
// FNV-1a hash over every element, with a bitwise comparison against the
// leader's operand before a follower may join. A full-hash collision
// between unequal operands degrades to solo execution, never to sharing.
//
// Leader-specific failures do not poison the cohort: when the leader's
// error is personal (its client disconnected, or its self-shortened queue
// deadline expired), settle marks the flight abandoned and the followers
// re-elect a new leader among themselves instead of inheriting an error
// their own request never earned.

// flightKey identifies one unit of multiply work by exact operand identity.
type flightKey struct {
	plan   string
	seeded bool   // operand addressed by seed (id = seed) vs inline (id = full hash)
	id     uint64 // seed, or operandHash of the full inline operand
	elems  int    // operand length, cheap shape guard
}

// flight is one in-progress execution plus everyone waiting on it. The
// leader writes res/err/abandoned and then closes done; followers read only
// after <-done, which is the happens-before edge.
type flight struct {
	done chan struct{}
	b    []float64 // leader's operand, for bitwise identity confirmation
	res  *execOutcome
	err  error
	// abandoned marks a leader-specific failure: followers should re-elect
	// rather than inherit err.
	abandoned bool

	followers int64 // guarded by the coalescer mutex until done closes
}

// coalescer tracks in-flight executions by key.
type coalescer struct {
	mu       sync.Mutex
	inflight map[flightKey]*flight
}

func newCoalescer() *coalescer {
	return &coalescer{inflight: map[flightKey]*flight{}}
}

// join returns the flight for key and whether the caller is its leader. A
// leader with a non-nil flight must eventually call settle exactly once. A
// (nil, true) return means "execute solo": the key is occupied by a flight
// whose operand is not bitwise-identical (a full-hash collision), so the
// caller runs its own multiply without coalescing.
func (c *coalescer) join(key flightKey, b []float64) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.inflight[key]; ok {
		if !key.seeded && !sameOperand(f.b, b) {
			return nil, true
		}
		f.followers++
		return f, false
	}
	f := &flight{done: make(chan struct{}), b: b}
	c.inflight[key] = f
	return f, true
}

// settle publishes the leader's outcome to every follower and retires the
// key. Removal precedes publication: a duplicate arriving after settle
// starts a fresh flight rather than receiving a stale result, and every
// follower that joined before removal observes exactly this outcome.
// Shared errors (execution failure, server-wide overload, drain) shed or
// fail the whole cohort; abandoned marks leader-specific errors, telling
// followers to re-elect instead.
func (c *coalescer) settle(key flightKey, f *flight, res *execOutcome, err error, abandoned bool) {
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	f.res, f.err, f.abandoned = res, err, abandoned
	close(f.done)
}

// followerCount reports how many followers shared the flight; call only
// after the flight settled (the count is frozen once the key is removed...
// and new joins are impossible).
func (f *flight) followerCount() int64 {
	return f.followers
}

// operandHash is the coalescing identity hash for inline operands: FNV-1a
// over the bit pattern of every element. Unlike the row cache's strided
// sample it covers the whole buffer, so two operands differing in any
// element hash apart (modulo 64-bit collisions, which sameOperand catches).
func operandHash(data []float64) uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	for _, v := range data {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= 1099511628211 // FNV prime
		}
	}
	return h
}

// sameOperand reports bitwise equality of two operands (NaN patterns
// compare by bits, not IEEE semantics — identity, not arithmetic).
func sameOperand(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
