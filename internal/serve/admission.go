package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission control: the daemon accepts at most MaxInFlight concurrent
// multiplies and queues at most MaxQueue more, each with a deadline. Beyond
// that it sheds load — 429 with Retry-After — instead of letting latency
// collapse under an unbounded backlog. A memory cap rides along: the dense
// operands of executing and queued requests may not exceed MaxInFlightBytes,
// so a burst of huge operands sheds even when slots remain.

// Admission failure modes, mapped onto HTTP statuses by the handler.
var (
	// ErrOverloaded: the wait queue (or the in-flight byte budget) is full.
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrQueueDeadline: the request sat in the admission queue past its
	// deadline without a slot freeing up.
	ErrQueueDeadline = errors.New("serve: queue deadline exceeded")
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("serve: draining, not accepting work")
	// ErrClientGone: the client disconnected while queued.
	ErrClientGone = errors.New("serve: client disconnected while queued")
)

// admission is the bounded slot-and-queue gate in front of the executor
// pool.
type admission struct {
	slots        chan struct{} // capacity MaxInFlight
	maxQueue     int64
	maxBytes     int64
	queueTimeout time.Duration

	queued   atomic.Int64
	inflight atomic.Int64
	bytes    atomic.Int64
	maxDepth atomic.Int64 // high-water queue depth, for the saturation test

	drain     chan struct{} // closed by startDrain
	draining  atomic.Bool
	drainOnce atomic.Bool
}

func newAdmission(maxInFlight, maxQueue int, maxBytes int64, queueTimeout time.Duration) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if queueTimeout <= 0 {
		queueTimeout = 2 * time.Second
	}
	return &admission{
		slots:        make(chan struct{}, maxInFlight),
		maxQueue:     int64(maxQueue),
		maxBytes:     maxBytes,
		queueTimeout: queueTimeout,
		drain:        make(chan struct{}),
	}
}

// startDrain flips the gate shut: future acquires fail with ErrDraining and
// every queued waiter is woken to fail the same way. In-flight work is
// unaffected — it holds its slot until release.
func (a *admission) startDrain() {
	if a.drainOnce.CompareAndSwap(false, true) {
		a.draining.Store(true)
		close(a.drain)
	}
}

// acquire claims an execution slot for a request carrying `bytes` of dense
// operand, waiting in the bounded queue up to the smaller of the configured
// queue timeout and `deadline` (0 means no per-request override). On success
// the returned release func must be called exactly once. On failure it
// returns one of the admission errors above.
func (a *admission) acquire(ctx context.Context, bytes int64, deadline time.Duration) (release func(), err error) {
	if a.draining.Load() {
		return nil, ErrDraining
	}
	if a.maxBytes > 0 && bytes > 0 {
		if a.bytes.Add(bytes) > a.maxBytes {
			a.bytes.Add(-bytes)
			return nil, ErrOverloaded
		}
	} else {
		bytes = 0
	}
	undoBytes := func() {
		if bytes > 0 {
			a.bytes.Add(-bytes)
		}
	}
	// Gauges move by atomic deltas (Gauge.Add), not read-compute-Set: two
	// concurrent acquire/release pairs can interleave a stale Set that never
	// self-corrects, whereas balanced Adds always return the gauge to truth.
	grant := func() func() {
		a.inflight.Add(1)
		metricInflight.Add(1)
		var done atomic.Bool
		return func() {
			if !done.CompareAndSwap(false, true) {
				return
			}
			undoBytes()
			a.inflight.Add(-1)
			metricInflight.Add(-1)
			<-a.slots
		}
	}

	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return grant(), nil
	default:
	}

	// Queue, bounded. The depth gauge tracks the post-increment depth; the
	// high-water mark is what the saturation harness asserts stays bounded.
	q := a.queued.Add(1)
	if q > a.maxQueue {
		a.queued.Add(-1)
		undoBytes()
		return nil, ErrOverloaded
	}
	metricQueueDepth.Add(1)
	for {
		hw := a.maxDepth.Load()
		if q <= hw || a.maxDepth.CompareAndSwap(hw, q) {
			break
		}
	}
	defer func() {
		a.queued.Add(-1)
		metricQueueDepth.Add(-1)
	}()

	wait := a.queueTimeout
	if deadline > 0 && deadline < wait {
		wait = deadline
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return grant(), nil
	case <-timer.C:
		undoBytes()
		return nil, ErrQueueDeadline
	case <-a.drain:
		undoBytes()
		return nil, ErrDraining
	case <-ctx.Done():
		undoBytes()
		return nil, ErrClientGone
	}
}

// QueueHighWater reports the maximum queue depth observed since start.
func (a *admission) QueueHighWater() int64 { return a.maxDepth.Load() }
