package serve

import (
	"fmt"
	"sort"
	"sync"

	"twoface"
)

// The resident-plan registry: preprocessed matrices held in memory for the
// lifetime of the daemon, each reusable across every multiply request that
// names it. Holding the Plan resident is the whole point of the serving
// shape — preprocessing and the executor's cross-run row cache amortize
// across the request stream instead of being paid per call.

// maxCachedOperands bounds each resident's seed-generated operand cache.
// Requests may carry B inline, but the load harness (and GNN-style callers
// re-multiplying a small working set of operands) address B by seed; caching
// the materialized matrices keeps repeat traffic on the row-cache hit path
// instead of regenerating and re-fingerprinting identical data.
const maxCachedOperands = 32

// Resident is one plan held in memory and served.
type Resident struct {
	// Name addresses the plan in requests and metrics.
	Name string
	// Plan is the preprocessed matrix (safe for concurrent Multiply; calls
	// serialize inside the Plan).
	Plan *twoface.Plan
	// K is the dense operand width the plan was built for.
	K int
	// Source describes where the matrix came from (generator spec or path).
	Source string

	opMu     sync.Mutex
	operands map[uint64]*twoface.DenseMatrix
}

// Operand returns the deterministic dense operand for seed (NumCols x K,
// the same matrix twoface.RandomDense yields), served from the resident's
// bounded cache.
func (res *Resident) Operand(seed uint64) *twoface.DenseMatrix {
	res.opMu.Lock()
	defer res.opMu.Unlock()
	if b, ok := res.operands[seed]; ok {
		return b
	}
	b := twoface.RandomDense(res.Plan.NumCols(), res.K, seed)
	if res.operands == nil {
		res.operands = map[uint64]*twoface.DenseMatrix{}
	}
	if len(res.operands) >= maxCachedOperands {
		// Evict one arbitrary entry; the cache is a working-set accelerator,
		// not a correctness structure, so any victim works.
		for k := range res.operands {
			delete(res.operands, k)
			break
		}
	}
	res.operands[seed] = b
	return b
}

// Registry is the named set of resident plans.
type Registry struct {
	mu    sync.RWMutex
	plans map[string]*Resident
}

// NewRegistry returns an empty plan registry.
func NewRegistry() *Registry {
	return &Registry{plans: map[string]*Resident{}}
}

// Add registers a resident plan. Names must be unique.
func (r *Registry) Add(res *Resident) error {
	if res.Name == "" {
		return fmt.Errorf("serve: resident plan needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.plans[res.Name]; ok {
		return fmt.Errorf("serve: duplicate plan %q", res.Name)
	}
	r.plans[res.Name] = res
	return nil
}

// Get returns the resident registered under name, or nil.
func (r *Registry) Get(name string) *Resident {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.plans[name]
}

// Names returns the registered plan names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.plans))
	for n := range r.plans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of resident plans.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.plans)
}
