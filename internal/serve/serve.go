// Package serve is the resident-plan serving daemon behind cmd/twoface-serve:
// an HTTP front end over a registry of preprocessed plans that runs multiply
// traffic concurrently across plans under bounded admission control, with
// request coalescing for concurrent duplicates.
//
// The request path is: parse → coalesce (duplicates of an in-flight
// execution wait on its outcome, consuming no slot) → admission (bounded
// in-flight slots + a bounded deadline queue + an operand byte budget;
// overload sheds with 429 + Retry-After instead of collapsing) → execute →
// respond. Shutdown is graceful: queued requests are either completed or
// 503'd, in-flight ones finish, and the HTTP server drains via context
// (obs.Server.Shutdown). All serving state is observable through the PR 7
// ops endpoints, which the daemon mounts on the same listener.
//
// See DESIGN.md section 13.
package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"strconv"
	"time"

	"twoface"
	"twoface/internal/obs"
)

// Config tunes the daemon's admission and request policies. Zero values
// take serving defaults, not "off".
type Config struct {
	// MaxInFlight bounds concurrent multiply executions (default 4).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot (default 64). Beyond it,
	// requests shed with 429.
	MaxQueue int
	// QueueTimeout is how long a request may wait for a slot before being
	// shed (default 2s). Requests may shorten it per call, never extend it.
	QueueTimeout time.Duration
	// MaxInFlightBytes caps the summed dense-operand bytes of executing and
	// queued requests (default 1 GiB; <0 disables the budget).
	MaxInFlightBytes int64
	// MaxBodyBytes caps one request body (default 256 MiB).
	MaxBodyBytes int64
	// AllowHold honors the hold_ms request field, an artificial pre-execute
	// delay inside the admission slot. A load-testing and smoke-test aid —
	// deterministic request overlap — disabled in production configs.
	AllowHold bool
	// Logger receives request-level records; nil uses the process logger.
	Logger *slog.Logger
}

func (c Config) normalize() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.MaxInFlightBytes == 0 {
		c.MaxInFlightBytes = 1 << 30
	}
	if c.MaxInFlightBytes < 0 {
		c.MaxInFlightBytes = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.Logger == nil {
		c.Logger = obs.Logger()
	}
	return c
}

// Server serves multiply traffic over a registry of resident plans.
type Server struct {
	cfg   Config
	plans *Registry
	adm   *admission
	coal  *coalescer
	ops   *obs.Server
	log   *slog.Logger
}

// New returns a server over the given resident plans.
func New(cfg Config, plans *Registry) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:   cfg,
		plans: plans,
		adm:   newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.MaxInFlightBytes, cfg.QueueTimeout),
		coal:  newCoalescer(),
		log:   cfg.Logger,
	}
	s.ops = obs.NewServer(nil)
	s.ops.Handle("/v1/multiply", http.HandlerFunc(s.handleMultiply))
	s.ops.Handle("/v1/plans", http.HandlerFunc(s.handlePlans))
	return s
}

// Ops exposes the underlying ops server (SetReport, SetStatus).
func (s *Server) Ops() *obs.Server { return s.ops }

// Start binds addr (":0" picks a free port) and serves in the background.
func (s *Server) Start(addr string) error {
	if err := s.ops.Start(addr); err != nil {
		return err
	}
	s.ops.SetStatus("serving")
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string { return s.ops.Addr() }

// Close stops the server immediately (tests); daemons use Shutdown.
func (s *Server) Close() error { return s.ops.Close() }

// QueueHighWater reports the maximum admission queue depth observed.
func (s *Server) QueueHighWater() int64 { return s.adm.QueueHighWater() }

// Shutdown drains the server: new and queued requests are refused (503 and
// 429→503 respectively — "completed or 503'd" is the contract, queued work
// has by definition not started), in-flight multiplies run to completion,
// and the HTTP layer drains via ctx. When ctx expires first, stragglers are
// cut and the context error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ops.SetStatus("draining")
	s.adm.startDrain()
	return s.ops.Shutdown(ctx)
}

// MultiplyRequest is the JSON body of POST /v1/multiply. Exactly one of B
// and Seed supplies the dense operand: B carries it inline (NumCols*K
// values, row-major), Seed addresses the deterministic random operand the
// server materializes (and caches) itself — the cheap path for load
// generation and GNN-style workloads with a small operand working set.
//
// The raw-binary alternative: POST with Content-Type
// application/octet-stream, the operand as little-endian float64s in the
// body, and plan/tenant/options in query parameters (plan, tenant, seed,
// include_c, hold_ms, queue_timeout_ms, no_coalesce).
type MultiplyRequest struct {
	Plan   string `json:"plan"`
	Tenant string `json:"tenant,omitempty"`

	Seed *uint64   `json:"seed,omitempty"`
	B    []float64 `json:"b,omitempty"`

	// IncludeC returns the full result matrix in the response (large!).
	IncludeC bool `json:"include_c,omitempty"`
	// HoldMillis delays execution inside the admission slot (needs
	// Config.AllowHold; capped at 10s). Load-testing aid.
	HoldMillis int `json:"hold_ms,omitempty"`
	// QueueTimeoutMillis shortens the admission queue deadline for this
	// request (0 = server default; never extends it).
	QueueTimeoutMillis int `json:"queue_timeout_ms,omitempty"`
	// NoCoalesce opts this request out of duplicate coalescing — the
	// harness's uncoalesced baseline.
	NoCoalesce bool `json:"no_coalesce,omitempty"`
}

// MultiplyResponse is the JSON reply to a served multiply.
type MultiplyResponse struct {
	Plan           string  `json:"plan"`
	Rows           int     `json:"rows"`
	K              int     `json:"k"`
	ModeledSeconds float64 `json:"modeled_seconds"`
	ExecMillis     float64 `json:"exec_ms"`
	QueueMillis    float64 `json:"queue_ms"`
	TotalMillis    float64 `json:"total_ms"`
	// Coalesced marks a follower response: this request shared another
	// request's execution (exec/queue times are the leader's).
	Coalesced bool `json:"coalesced"`
	// Checksum is FingerprintDense of the result C.
	Checksum uint64 `json:"checksum"`
	// RowCacheHits / Misses are the executor's cross-run row-cache counters
	// for this execution.
	RowCacheHits   int64     `json:"row_cache_hits"`
	RowCacheMisses int64     `json:"row_cache_misses"`
	C              []float64 `json:"c,omitempty"`
}

// PlanInfo is one entry of GET /v1/plans.
type PlanInfo struct {
	Name   string            `json:"name"`
	Rows   int               `json:"rows"`
	Cols   int               `json:"cols"`
	K      int               `json:"k"`
	Source string            `json:"source,omitempty"`
	Prep   twoface.PrepStats `json:"prep"`
}

// execOutcome is what one execution produces, shared verbatim with every
// coalesced follower.
type execOutcome struct {
	res         *twoface.Result
	checksum    uint64
	execMillis  float64
	queueMillis float64
}

// parsedRequest is a multiply request after validation: the resident it
// addresses, the materialized operand, and the exact-identity coalescing
// key (see coalesce.go for why the key is not the row cache's sampled
// fingerprint).
type parsedRequest struct {
	req      MultiplyRequest
	resident *Resident
	b        *twoface.DenseMatrix
	key      flightKey
	bytes    int64 // operand bytes counted against the admission budget
}

// httpError carries a status (and optional Retry-After) to the response.
type httpError struct {
	status     int
	retryAfter int
	msg        string
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var out []PlanInfo
	for _, name := range s.plans.Names() {
		res := s.plans.Get(name)
		out = append(out, PlanInfo{
			Name: name, Rows: res.Plan.NumRows(), Cols: res.Plan.NumCols(),
			K: res.K, Source: res.Source, Prep: res.Plan.Stats(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// handleMultiply is the serving hot path; see the package comment for the
// stage order and metrics.go for the outcome accounting.
func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	pr, err := s.parseRequest(r)
	if err != nil {
		metricBadRequests.Inc()
		s.writeError(w, err)
		return
	}
	metricRequests.Inc()
	metricsForPlan(pr.resident.Name).requests.Inc()
	tenantRequests(pr.req.Tenant).Inc()

	countedCoalesced := false
	for {
		var fl *flight
		leader := true
		if !pr.req.NoCoalesce {
			fl, leader = s.coal.join(pr.key, pr.b.Data)
		}
		if leader {
			out, err := s.execute(r.Context(), pr)
			if fl != nil {
				s.coal.settle(pr.key, fl, out, err, leaderOnlyError(pr, err))
			}
			s.respond(w, pr, out, err, false, start)
			if fl != nil && s.log.Enabled(nil, slog.LevelDebug) && fl.followerCount() > 0 {
				s.log.Debug("coalesced execution",
					"plan", pr.resident.Name, "followers", fl.followerCount(), "key", pr.key.id)
			}
			return
		}

		// Follower: wait for the leader's outcome (or the client to give
		// up) and respond with the shared result. A flight abandoned on a
		// leader-specific error loops back to re-elect a new leader among
		// the surviving followers instead of inheriting the error.
		if !countedCoalesced {
			metricCoalesced.Inc()
			countedCoalesced = true
		}
		select {
		case <-fl.done:
		case <-r.Context().Done():
			metricFailed.Inc()
			return
		}
		if fl.abandoned {
			continue
		}
		s.respond(w, pr, fl.res, fl.err, true, start)
		return
	}
}

// leaderOnlyError reports whether err condemns only this leader, not the
// work: the leader's client disconnected, or its self-shortened queue
// deadline expired (a still-connected follower without that override would
// have kept waiting). Shared conditions — execution failure, the server's
// own queue deadline, overload, drain — stay cohort-wide.
func leaderOnlyError(pr *parsedRequest, err error) bool {
	if errors.Is(err, ErrClientGone) {
		return true
	}
	return errors.Is(err, ErrQueueDeadline) && pr.req.QueueTimeoutMillis > 0
}

// execute runs one multiply under admission control.
func (s *Server) execute(ctx context.Context, pr *parsedRequest) (*execOutcome, error) {
	qStart := time.Now()
	release, err := s.adm.acquire(ctx, pr.bytes, time.Duration(pr.req.QueueTimeoutMillis)*time.Millisecond)
	if err != nil {
		return nil, err
	}
	defer release()
	queueWait := time.Since(qStart)
	metricQueueWait.Observe(queueWait.Seconds())

	if pr.req.HoldMillis > 0 && s.cfg.AllowHold {
		hold := time.Duration(pr.req.HoldMillis) * time.Millisecond
		if hold > 10*time.Second {
			hold = 10 * time.Second
		}
		select {
		case <-time.After(hold):
		case <-ctx.Done():
			return nil, ErrClientGone
		}
	}

	eStart := time.Now()
	metricExecs.Inc()
	res, err := pr.resident.Plan.Multiply(pr.b)
	if err != nil {
		return nil, err
	}
	execWall := time.Since(eStart)
	metricExecTime.Observe(execWall.Seconds())
	metricRowCacheHits.Add(res.RowCache.Hits)
	metricRowCacheMisses.Add(res.RowCache.Misses)
	return &execOutcome{
		res:         res,
		checksum:    twoface.FingerprintDense(res.C),
		execMillis:  float64(execWall) / float64(time.Millisecond),
		queueMillis: float64(queueWait) / float64(time.Millisecond),
	}, nil
}

// respond writes the outcome (or its error) and records the request's
// terminal metrics. Every admitted request passes through here exactly once,
// except followers whose client vanished (counted failed in awaitFlight).
func (s *Server) respond(w http.ResponseWriter, pr *parsedRequest, out *execOutcome, err error, coalesced bool, start time.Time) {
	if err != nil {
		s.writeError(w, err)
		return
	}
	metricCompleted.Inc()
	total := time.Since(start)
	metricLatency.Observe(total.Seconds())
	metricsForPlan(pr.resident.Name).latency.Observe(total.Seconds())
	resp := MultiplyResponse{
		Plan:           pr.resident.Name,
		Rows:           out.res.C.Rows,
		K:              out.res.C.Cols,
		ModeledSeconds: out.res.ModeledSeconds,
		ExecMillis:     out.execMillis,
		QueueMillis:    out.queueMillis,
		TotalMillis:    float64(total) / float64(time.Millisecond),
		Coalesced:      coalesced,
		Checksum:       out.checksum,
		RowCacheHits:   out.res.RowCache.Hits,
		RowCacheMisses: out.res.RowCache.Misses,
	}
	if pr.req.IncludeC {
		resp.C = out.res.C.Data
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// writeError maps an error onto its HTTP status and outcome counter.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
		}
		http.Error(w, he.msg, he.status)
		return
	}
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrQueueDeadline):
		metricShed.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining):
		metricDrained.Inc()
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		metricFailed.Inc()
		s.log.Warn("multiply failed", "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseRequest validates a multiply request in either encoding and
// materializes its operand. Errors here are the client's fault (4xx) and do
// not enter the outcome accounting.
func (s *Server) parseRequest(r *http.Request) (*parsedRequest, error) {
	var req MultiplyRequest
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	binaryB := false
	// Compare the media type only, so parameterized headers like
	// "application/octet-stream; charset=binary" still select binary mode.
	mediaType := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(mediaType); err == nil {
		mediaType = mt
	}
	switch {
	case mediaType == "application/octet-stream":
		binaryB = true
		q := r.URL.Query()
		req.Plan = q.Get("plan")
		req.Tenant = q.Get("tenant")
		req.IncludeC = q.Get("include_c") == "1"
		req.NoCoalesce = q.Get("no_coalesce") == "1"
		if v := q.Get("seed"); v != "" {
			return nil, badRequest("seed is a JSON-mode parameter; octet-stream bodies carry B inline")
		}
		if v := q.Get("hold_ms"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, badRequest("bad hold_ms %q", v)
			}
			req.HoldMillis = n
		}
		if v := q.Get("queue_timeout_ms"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, badRequest("bad queue_timeout_ms %q", v)
			}
			req.QueueTimeoutMillis = n
		}
	default:
		dec := json.NewDecoder(body)
		if err := dec.Decode(&req); err != nil {
			if maxed := maxBytesError(err); maxed != nil {
				return nil, maxed
			}
			return nil, badRequest("bad request body: %v", err)
		}
	}
	if req.Plan == "" {
		return nil, badRequest("missing plan name")
	}
	resident := s.plans.Get(req.Plan)
	if resident == nil {
		return nil, &httpError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown plan %q (have %v)", req.Plan, s.plans.Names())}
	}
	wantElems := resident.Plan.NumCols() * resident.K

	pr := &parsedRequest{req: req, resident: resident}
	switch {
	case binaryB:
		raw, err := io.ReadAll(body)
		if err != nil {
			if maxed := maxBytesError(err); maxed != nil {
				return nil, maxed
			}
			return nil, badRequest("reading body: %v", err)
		}
		if len(raw) != wantElems*8 {
			return nil, badRequest("binary operand is %d bytes, want %d (%d x %d float64)",
				len(raw), wantElems*8, resident.Plan.NumCols(), resident.K)
		}
		data := make([]float64, wantElems)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		pr.b = &twoface.DenseMatrix{Rows: resident.Plan.NumCols(), Cols: resident.K, Data: data}
		pr.bytes = int64(len(raw))
	case req.B != nil && req.Seed != nil:
		return nil, badRequest("give b or seed, not both")
	case req.B != nil:
		if len(req.B) != wantElems {
			return nil, badRequest("operand has %d elements, want %d (%d x %d)",
				len(req.B), wantElems, resident.Plan.NumCols(), resident.K)
		}
		pr.b = &twoface.DenseMatrix{Rows: resident.Plan.NumCols(), Cols: resident.K, Data: req.B}
		pr.bytes = int64(8 * len(req.B))
	case req.Seed != nil:
		// Cached server-side operands carry no admission byte cost beyond
		// the cache itself; the budget targets per-request payloads.
		pr.b = resident.Operand(*req.Seed)
	default:
		return nil, badRequest("missing operand: give b, seed, or an octet-stream body")
	}
	// Exact-identity coalescing key: the seed addresses a deterministic
	// server-materialized operand, so seed equality is operand equality;
	// inline operands hash every element (and join confirms bitwise
	// equality against the leader — see coalesce.go).
	if req.Seed != nil && !binaryB {
		pr.key = flightKey{plan: resident.Name, seeded: true, id: *req.Seed, elems: len(pr.b.Data)}
	} else {
		pr.key = flightKey{plan: resident.Name, id: operandHash(pr.b.Data), elems: len(pr.b.Data)}
	}
	return pr, nil
}

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// maxBytesError translates the http.MaxBytesReader failure into 413.
func maxBytesError(err error) *httpError {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &httpError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
	}
	return nil
}
