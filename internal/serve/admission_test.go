package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"twoface/internal/obs"
)

// TestAdmissionFastPath: free slots admit without queueing, and release
// returns them.
func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(2, 4, 0, time.Second)
	r1, err := a.acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r1() // double release is a no-op, not a corrupted slot count
	r2()
	for i := 0; i < 2; i++ {
		r, err := a.acquire(context.Background(), 0, 0)
		if err != nil {
			t.Fatalf("slot %d after release: %v", i, err)
		}
		defer r()
	}
}

// TestAdmissionOverload: with slots and queue full, acquire sheds
// immediately with ErrOverloaded instead of blocking.
func TestAdmissionOverload(t *testing.T) {
	a := newAdmission(1, 1, 0, time.Minute)
	rel, err := a.acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// One queued waiter fills the queue.
	queued := make(chan error, 1)
	go func() {
		r, err := a.acquire(context.Background(), 0, 0)
		if err == nil {
			r()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return a.queued.Load() == 1 })
	// The next request finds queue full.
	if _, err := a.acquire(context.Background(), 0, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire = %v, want ErrOverloaded", err)
	}
	a.startDrain()
	if err := <-queued; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter woke with %v, want ErrDraining", err)
	}
}

// TestAdmissionQueueDeadlineOrdering: two requests queue behind a held slot
// with different deadlines. The short-deadline one expires and is shed even
// though a slot frees up later; the long-deadline one — queued after it —
// still acquires. Expiry removes the loser from the queue accounting.
func TestAdmissionQueueDeadlineOrdering(t *testing.T) {
	a := newAdmission(1, 4, 0, time.Minute)
	rel, err := a.acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	shortErr := make(chan error, 1)
	go func() {
		_, err := a.acquire(context.Background(), 0, 30*time.Millisecond)
		shortErr <- err
	}()
	waitFor(t, func() bool { return a.queued.Load() == 1 })
	longErr := make(chan error, 1)
	go func() {
		r, err := a.acquire(context.Background(), 0, 10*time.Second)
		if err == nil {
			defer r()
		}
		longErr <- err
	}()
	waitFor(t, func() bool { return a.queued.Load() == 2 })

	if err := <-shortErr; !errors.Is(err, ErrQueueDeadline) {
		t.Fatalf("short-deadline waiter = %v, want ErrQueueDeadline", err)
	}
	waitFor(t, func() bool { return a.queued.Load() == 1 })
	rel() // now the slot frees: only the surviving waiter may take it
	if err := <-longErr; err != nil {
		t.Fatalf("long-deadline waiter = %v, want success after release", err)
	}
	if a.QueueHighWater() != 2 {
		t.Fatalf("queue high water = %d, want 2", a.QueueHighWater())
	}
}

// TestAdmissionClientGone: a queued waiter whose request context dies is
// released with ErrClientGone.
func TestAdmissionClientGone(t *testing.T) {
	a := newAdmission(1, 4, 0, time.Minute)
	rel, err := a.acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, 0, 0)
		got <- err
	}()
	waitFor(t, func() bool { return a.queued.Load() == 1 })
	cancel()
	if err := <-got; !errors.Is(err, ErrClientGone) {
		t.Fatalf("cancelled waiter = %v, want ErrClientGone", err)
	}
}

// TestAdmissionByteBudget: the operand byte budget sheds oversized traffic
// even with free slots, and releases reclaim the budget.
func TestAdmissionByteBudget(t *testing.T) {
	a := newAdmission(4, 4, 100, time.Second)
	rel, err := a.acquire(context.Background(), 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.acquire(context.Background(), 30, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget acquire = %v, want ErrOverloaded", err)
	}
	rel()
	rel2, err := a.acquire(context.Background(), 30, 0)
	if err != nil {
		t.Fatalf("post-release acquire = %v", err)
	}
	rel2()
	if got := a.bytes.Load(); got != 0 {
		t.Fatalf("byte budget leaked: %d", got)
	}
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

func init() { obs.Default.SetEnabled(true) }
