package serve

import (
	"strings"
	"sync"

	"twoface/internal/obs"
)

// Serving metrics, registered on the process-wide registry so the PR 7 ops
// endpoint (/metrics OpenMetrics exposition, /report snapshots) and the slog
// layer cover the daemon for free. The request-outcome counters partition:
// every request that passes parsing lands in exactly one of completed, shed
// (429), drained (503), or failed (500 / client gone), so
//
//	serve.requests == serve.completed + serve.shed + serve.drained + serve.failed
//
// holds at every quiescent instant — the identity the serving tests assert.
// serve.coalesced counts follower requests that shared a leader's execution
// (they still land in an outcome bucket); serve.exec counts actual
// Plan.Multiply runs, so requests - exec bounds the work coalescing and
// shedding saved. Row-cache hit counters come from the executor's own
// Result, keeping "coalesced" and "row-cache hit" distinguishable: the
// former never entered the executor, the latter did and skipped refetching.
var (
	metricRequests    = obs.Default.Counter("serve.requests")
	metricBadRequests = obs.Default.Counter("serve.bad_requests")
	metricCompleted   = obs.Default.Counter("serve.completed")
	metricShed        = obs.Default.Counter("serve.shed")
	metricDrained     = obs.Default.Counter("serve.drained")
	metricFailed      = obs.Default.Counter("serve.failed")
	metricCoalesced   = obs.Default.Counter("serve.coalesced")
	metricExecs       = obs.Default.Counter("serve.exec")

	metricInflight   = obs.Default.Gauge("serve.inflight")
	metricQueueDepth = obs.Default.Gauge("serve.queue.depth")

	metricLatency   = obs.Default.Histogram("serve.latency_seconds", obs.ExpBuckets(1e-4, 2, 20))
	metricQueueWait = obs.Default.Histogram("serve.queue_seconds", obs.ExpBuckets(1e-5, 2, 20))
	metricExecTime  = obs.Default.Histogram("serve.exec_seconds", obs.ExpBuckets(1e-4, 2, 20))

	metricRowCacheHits   = obs.Default.Counter("serve.rowcache.hits")
	metricRowCacheMisses = obs.Default.Counter("serve.rowcache.misses")
)

// planMetrics are the per-plan counters, registered lazily on first traffic.
type planMetrics struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

var (
	planMetricsMu sync.Mutex
	planMetricsBy = map[string]*planMetrics{}
	tenantCounter = map[string]*obs.Counter{}
)

// metricsForPlan returns (registering on first use) the counters for one
// resident plan.
func metricsForPlan(name string) *planMetrics {
	planMetricsMu.Lock()
	defer planMetricsMu.Unlock()
	if pm, ok := planMetricsBy[name]; ok {
		return pm
	}
	slug := metricSlug(name)
	pm := &planMetrics{
		requests: obs.Default.Counter("serve.plan." + slug + ".requests"),
		latency:  obs.Default.Histogram("serve.plan."+slug+".latency_seconds", obs.ExpBuckets(1e-4, 2, 20)),
	}
	planMetricsBy[name] = pm
	return pm
}

// maxTenantMetrics caps how many distinct per-tenant counters the daemon
// registers. The tenant string is client-supplied and unvalidated, so
// without a cap any client could grow the process-wide registry (and the
// /metrics exposition) without bound. Overflow tenants fold into one
// serve.tenant.other.requests counter — totals stay exact, only the
// per-tenant breakdown saturates.
const maxTenantMetrics = 64

var tenantOverflow = obs.Default.Counter("serve.tenant.other.requests")

// tenantRequests returns the per-tenant request counter, or the shared
// overflow counter once maxTenantMetrics distinct tenants are registered.
func tenantRequests(tenant string) *obs.Counter {
	planMetricsMu.Lock()
	defer planMetricsMu.Unlock()
	if c, ok := tenantCounter[tenant]; ok {
		return c
	}
	if len(tenantCounter) >= maxTenantMetrics {
		return tenantOverflow
	}
	c := obs.Default.Counter("serve.tenant." + metricSlug(tenant) + ".requests")
	tenantCounter[tenant] = c
	return c
}

// metricSlug maps an arbitrary plan/tenant name onto the exposition-safe
// charset: lowercase alphanumerics with underscores.
func metricSlug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "default"
	}
	return b.String()
}
