package atomicfloat

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddLoadStore(t *testing.T) {
	var bits uint64
	Store(&bits, 1.5)
	if got := Load(&bits); got != 1.5 {
		t.Fatalf("Load = %v, want 1.5", got)
	}
	Add(&bits, 2.25)
	if got := Load(&bits); got != 3.75 {
		t.Fatalf("after Add, Load = %v, want 3.75", got)
	}
}

func TestConcurrentAddExact(t *testing.T) {
	// Sums of powers of two are exact in float64 regardless of order, so the
	// result must be exactly deterministic if every Add is applied once.
	var bits uint64
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				Add(&bits, 0.25)
			}
		}()
	}
	wg.Wait()
	want := float64(workers*perWorker) * 0.25
	if got := Load(&bits); got != want {
		t.Fatalf("concurrent sum = %v, want %v (lost updates)", got, want)
	}
}

func TestSliceBasics(t *testing.T) {
	s := NewSlice(4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Store(2, 5)
	s.Add(2, 1)
	if got := s.Load(2); got != 6 {
		t.Fatalf("Load(2) = %v, want 6", got)
	}
	out := s.Float64s()
	if out[2] != 6 || out[0] != 0 {
		t.Fatalf("Float64s = %v", out)
	}
	dst := make([]float64, 4)
	s.CopyTo(dst)
	if dst[2] != 6 {
		t.Fatalf("CopyTo = %v", dst)
	}
}

func TestAddRange(t *testing.T) {
	s := NewSlice(6)
	s.AddRange(2, []float64{1, 2, 3})
	s.AddRange(2, []float64{10, 0, 30})
	want := []float64{0, 0, 11, 2, 33, 0}
	got := s.Float64s()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AddRange result %v, want %v", got, want)
		}
	}
}

func TestConcurrentAddRange(t *testing.T) {
	s := NewSlice(8)
	vals := []float64{0.5, 1, 1.5, 2}
	const workers = 8
	const reps = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				s.AddRange(3, vals)
			}
		}()
	}
	wg.Wait()
	for i, v := range vals {
		want := v * workers * reps
		if got := s.Load(3 + i); got != want {
			t.Fatalf("element %d = %v, want %v", 3+i, got, want)
		}
	}
}

func TestAddMatchesPlainSum(t *testing.T) {
	f := func(vals []float64) bool {
		var bits uint64
		var plain float64
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			Add(&bits, v)
			plain += v
		}
		got := Load(&bits)
		return got == plain || math.Abs(got-plain) <= 1e-12*math.Abs(plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSpecialValues(t *testing.T) {
	var bits uint64
	Store(&bits, math.Inf(1))
	if !math.IsInf(Load(&bits), 1) {
		t.Fatal("Inf roundtrip failed")
	}
	Store(&bits, math.Copysign(0, -1))
	if !math.Signbit(Load(&bits)) {
		t.Fatal("-0 roundtrip failed")
	}
}
