// Package atomicfloat provides lock-free accumulation of float64 values,
// which the SpMM kernels use to add partial results into shared rows of the
// output matrix C from many goroutines at once (paper Algorithms 2 and 3:
// "Atomics are required ... because some threads operating on asynchronous
// stripes may also be writing to the same rows of C").
//
// Go's sync/atomic has no floating-point operations, so values are stored as
// their IEEE-754 bit patterns in uint64 words and updated with compare-and-
// swap loops. This is the standard portable construction and is linearizable:
// each successful CAS applies exactly one addend.
package atomicfloat

import (
	"math"
	"sync/atomic"
)

// Add atomically performs *addr += delta, where *addr holds the bit pattern
// of a float64.
func Add(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, next) {
			return
		}
	}
}

// Load atomically reads the float64 stored at addr.
func Load(addr *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(addr))
}

// Store atomically writes v to addr.
func Store(addr *uint64, v float64) {
	atomic.StoreUint64(addr, math.Float64bits(v))
}

// Slice is a fixed-length vector of atomically updatable float64 values.
type Slice struct {
	bits []uint64
}

// NewSlice returns a zero-initialized atomic vector of length n.
func NewSlice(n int) *Slice { return &Slice{bits: make([]uint64, n)} }

// Len returns the vector length.
func (s *Slice) Len() int { return len(s.bits) }

// Add atomically performs s[i] += v.
func (s *Slice) Add(i int, v float64) { Add(&s.bits[i], v) }

// AddRange atomically accumulates vals into s[off : off+len(vals)],
// element-wise. Each element is updated independently; the range as a whole
// is not one atomic unit (matching the per-element semantics of the paper's
// AtomicAdd over an output row).
func (s *Slice) AddRange(off int, vals []float64) {
	for i, v := range vals {
		if v != 0 {
			Add(&s.bits[off+i], v)
		}
	}
}

// Load atomically reads s[i].
func (s *Slice) Load(i int) float64 { return Load(&s.bits[i]) }

// Store atomically writes s[i] = v.
func (s *Slice) Store(i int, v float64) { Store(&s.bits[i], v) }

// Float64s copies the current contents into a new []float64. It is intended
// for use after all writers have finished; concurrent use sees each element
// atomically but not a consistent snapshot of the whole vector.
func (s *Slice) Float64s() []float64 {
	out := make([]float64, len(s.bits))
	for i := range s.bits {
		out[i] = Load(&s.bits[i])
	}
	return out
}

// CopyTo writes the current contents into dst, which must have length Len().
func (s *Slice) CopyTo(dst []float64) {
	for i := range s.bits {
		dst[i] = Load(&s.bits[i])
	}
}
