#!/usr/bin/env bash
# Reproduce the serving benchmark artifacts: a self-hosted daemon driven by
# twoface-loadgen through the closed-loop concurrency sweep, the open-loop
# fixed-rate latency profile, the saturation probe (bounded queue + 429
# shedding), and the duplicate-coalescing comparison. Appends a record to
# BENCH_serve.json and rewrites REPORT_serve.md; compare runs with
#
#   git diff BENCH_serve.json REPORT_serve.md
#
# Numbers are wall-clock and host-dependent (the committed record lists the
# host core count under config.num_cpu). Extra flags pass through to
# twoface-loadgen, e.g.  scripts/serve_bench.sh -conc 1,4,16 -runs 5
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

go run ./cmd/twoface-loadgen -self-host -plans web:0.05 -copies 4 -K 32 -p 4 \
    -mode all -conc 1,2,4,8,16 -runs 3 -warmup 1 -requests 150 \
    -qps 50 -run-dur 2s \
    -out BENCH_serve.json -report REPORT_serve.md "$@"
