#!/usr/bin/env bash
# Diff two run reports (or trajectory files) benchstat-style: which metrics
# moved past their noise thresholds, which phase moved the makespan, whether
# the configs are even comparable. Wraps twoface-bench -compare-report.
#
#   scripts/compare.sh old.json new.json          # print the diff, exit 0
#   scripts/compare.sh -fail old.json new.json    # exit 1 on any regression
#
# Each file may be a -report output (twoface-run or twoface-bench) or a
# trajectory array (BENCH_runs.json style), in which case its last entry is
# compared.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

fail=""
if [ "${1:-}" = "-fail" ]; then
    fail="-compare-fail"
    shift
fi
if [ $# -ne 2 ]; then
    echo "usage: scripts/compare.sh [-fail] OLD.json NEW.json" >&2
    exit 2
fi

go run ./cmd/twoface-bench -compare-report "$1,$2" $fail
