#!/usr/bin/env bash
# Tier-1 gate: vet, build, race-enabled tests, and a smoke pass over the
# kernel microbenchmarks. ROADMAP.md documents this as the check every PR
# must keep green. Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== kernel benchmark smoke (1 iteration each)"
go test -run '^$' -bench '^BenchmarkKernel(Axpy|AsyncStripeAccumulate|PanelMultiply)$' \
    -benchtime 1x .

echo "== check.sh: all green"
