#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, race-enabled tests, a smoke pass over
# the kernel microbenchmarks, and an end-to-end observability smoke.
# ROADMAP.md documents this as the check every PR must keep green. Run from
# anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== GOOS=linux GOARCH=arm64 go build ./... (NEON kernel cross-compile)"
GOOS=linux GOARCH=arm64 go build ./...

echo "== go test -race ./... (SIMD dispatch)"
go test -race ./...

echo "== go test -race ./... (TWOFACE_FORCE_GENERIC=1)"
TWOFACE_FORCE_GENERIC=1 go test -race ./...

echo "== kernel benchmark smoke (1 iteration each)"
go test -run '^$' \
    -bench '^BenchmarkKernel(Axpy|AxpyVariants|AsyncStripeAccumulate|PanelMultiply|PanelVariants)$' \
    -benchtime 1x .

echo "== observability smoke (trace + report on a small run)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/twoface-run -matrix web -scale 0.05 -algo twoface -verify=false \
    -trace -trace-out "$tmp/run.trace.json" -report "$tmp/run.json" >/dev/null
grep -q '"traceEvents"' "$tmp/run.trace.json"
grep -q '"go_version"' "$tmp/run.json"
grep -q '"modeled_seconds"' "$tmp/run.json"

echo "== live ops smoke (-listen endpoint scrapeable during a run)"
go build -o "$tmp/twoface-run" ./cmd/twoface-run
"$tmp/twoface-run" -matrix web -scale 0.1 -algo twoface -K 128 \
    -listen 127.0.0.1:0 -explain -report "$tmp/live.json" >"$tmp/live.out" &
live_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|^ops endpoint: http://\([^ ]*\) .*|\1|p' "$tmp/live.out")
    [ -n "$addr" ] && break
    sleep 0.05
done
if [ -z "$addr" ]; then
    echo "ops endpoint never announced its address" >&2
    kill "$live_pid" 2>/dev/null || true
    exit 1
fi
# Scrape while the run is (probably) still alive; the exposition must be
# well-formed OpenMetrics whenever we catch it.
curl -sf "http://$addr/metrics" >"$tmp/metrics.out" || true
curl -sf "http://$addr/healthz" >"$tmp/healthz.out" || true
wait "$live_pid"
if [ -s "$tmp/metrics.out" ]; then
    grep -q '^# EOF$' "$tmp/metrics.out"
fi
if [ -s "$tmp/healthz.out" ]; then
    grep -q '^ok ' "$tmp/healthz.out"
fi
# The -explain attribution printed and reconciled (the CLI fails otherwise).
grep -q '^critical path: rank ' "$tmp/live.out"
grep -q '"critical_path"' "$tmp/live.json"

echo "== report compare soft gate (same config twice => no modeled regressions)"
"$tmp/twoface-run" -matrix web -scale 0.1 -algo twoface -K 128 \
    -report "$tmp/base.json" >/dev/null
go run ./cmd/twoface-bench -compare-report "$tmp/base.json,$tmp/live.json" \
    >"$tmp/compare.out" || true
cat "$tmp/compare.out"
# Identical configs on a deterministic simulator: modeled metrics must not
# regress. Wall-clock rows jitter freely and are thresholded generously, so
# this stays a soft signal unless a modeled row regresses.
if go run ./cmd/twoface-bench -compare-report "$tmp/base.json,$tmp/live.json" \
    -compare-fail >/dev/null 2>&1; then
    :
else
    echo "note: compare gate saw regressions between identical-config runs (see above)" >&2
fi

echo "== chaos smoke (seeded fault injection, bit-exact degradation)"
go run -race ./cmd/twoface-run -matrix web -scale 0.05 -algo twoface \
    -chaos-seed 7 >"$tmp/chaos.out"
grep -Eq 'chaos: (bit-exact with|matches) the fault-free run' "$tmp/chaos.out"

echo "== crash-recovery smoke (checkpointed fail-recover, twin bit-exactness)"
# A mid-run crash with -recover must complete without aborting, re-execute
# the dead rank's work on the survivors, keep C bit-identical to the
# fault-free twin, and -explain must still reconcile the makespan with the
# checkpoint/recovery charges included (the CLI exits non-zero otherwise).
cat >"$tmp/crash.json" <<'EOF'
{"seed": 7, "crashes": [{"rank": 1, "at": 3e-6}]}
EOF
go run -race ./cmd/twoface-run -matrix web -scale 0.05 -algo twoface -K 64 \
    -fault-plan "$tmp/crash.json" -recover -checkpoint-interval 1e-6 \
    -explain >"$tmp/crash.out"
grep -q 'chaos: recovered 1 crashed rank' "$tmp/crash.out"
grep -Eq 'chaos: (bit-exact with|matches) the fault-free run' "$tmp/crash.out"
grep -q '^critical path: rank ' "$tmp/crash.out"

echo "== async aggregation smoke (batched vs legacy one-sided path, -race)"
go run -race ./cmd/twoface-run -matrix web -scale 0.05 -algo twoface \
    >"$tmp/batched.out"
go run -race ./cmd/twoface-run -matrix web -scale 0.05 -algo twoface \
    -legacy-async >"$tmp/legacy.out"
# Both modes must verify against the reference kernel, and the batched path
# must not issue more one-sided requests than the legacy per-stripe path.
grep -q 'verified against the reference kernel' "$tmp/batched.out"
grep -q 'verified against the reference kernel' "$tmp/legacy.out"
batched_gets=$(sed -n 's/.* one-sided in \([0-9]*\) gets.*/\1/p' "$tmp/batched.out")
legacy_gets=$(sed -n 's/.* one-sided in \([0-9]*\) gets.*/\1/p' "$tmp/legacy.out")
if [ -n "$batched_gets" ] && [ -n "$legacy_gets" ] && [ "$batched_gets" -gt "$legacy_gets" ]; then
    echo "batched path issued $batched_gets gets > legacy $legacy_gets" >&2
    exit 1
fi

echo "== pipelining smoke (overlapped vs serialized sync path, -race)"
go run -race ./cmd/twoface-run -matrix web -scale 0.05 -algo twoface \
    >"$tmp/overlap.out"
go run -race ./cmd/twoface-run -matrix web -scale 0.05 -algo twoface \
    -no-overlap >"$tmp/serial.out"
grep -q 'verified against the reference kernel' "$tmp/overlap.out"
grep -q 'verified against the reference kernel' "$tmp/serial.out"
# Pipelining may only hide time, never add it: the overlapped modeled
# makespan must not exceed the serialized one (awk handles the %.4g floats).
overlap_t=$(sed -n 's/^modeled time: \([0-9.e+-]*\) s .*/\1/p' "$tmp/overlap.out")
serial_t=$(sed -n 's/^modeled time: \([0-9.e+-]*\) s .*/\1/p' "$tmp/serial.out")
if [ -z "$overlap_t" ] || [ -z "$serial_t" ]; then
    echo "could not parse modeled times from the pipelining smoke" >&2
    exit 1
fi
awk -v a="$overlap_t" -v b="$serial_t" 'BEGIN { exit !(a <= b * 1.0001) }' || {
    echo "pipelined makespan $overlap_t s exceeds serialized $serial_t s" >&2
    exit 1
}
# A delayed multicast leg must stall only the panels that need the afflicted
# stripe — the run still verifies and still beats (or ties) the serial path.
cat >"$tmp/legs.json" <<'EOF'
{"seed": 1, "legs": [{"origin": -1, "root": -1, "prob": 0.5, "fails": 1, "delay": 1e-4}]}
EOF
go run -race ./cmd/twoface-run -matrix web -scale 0.05 -algo twoface \
    -fault-plan "$tmp/legs.json" >"$tmp/chaos_legs.out"
grep -Eq 'chaos: (bit-exact with|matches) the fault-free run' "$tmp/chaos_legs.out"

echo "== two-process TCP smoke (real sockets, C bit-identical to the simulator)"
# Two OS processes, one rank each, rendezvous on 127.0.0.1. Single-worker
# execution pins the accumulation order, so the gathered C must be
# bit-for-bit the simulator's C — any drift means the transport moved
# wrong data. Both ranks must exit 0 (clean shutdown, no hung barrier).
"$tmp/twoface-run" -matrix web -scale 0.1 -algo twoface -K 64 -p 2 \
    -sync-workers 1 -async-workers 1 -write-c "$tmp/c_sim.bin" \
    >"$tmp/tcp_sim.out"
"$tmp/twoface-run" -matrix web -scale 0.1 -algo twoface -K 64 -p 2 \
    -sync-workers 1 -async-workers 1 -rank 0 -rendezvous "$tmp/rv" \
    -write-c "$tmp/c_tcp.bin" >"$tmp/tcp_rank0.out" &
rank0_pid=$!
"$tmp/twoface-run" -matrix web -scale 0.1 -algo twoface -K 64 -p 2 \
    -sync-workers 1 -async-workers 1 -rank 1 -rendezvous "$tmp/rv" &
rank1_pid=$!
wait "$rank0_pid"
wait "$rank1_pid"
grep -q 'multi-process TCP' "$tmp/tcp_rank0.out"
grep -q 'verified against the reference kernel' "$tmp/tcp_rank0.out"
grep -q '^measured time: ' "$tmp/tcp_rank0.out"
cmp "$tmp/c_tcp.bin" "$tmp/c_sim.bin" || {
    echo "TCP-backend C differs from the simulator's C" >&2
    exit 1
}

echo "== serve smoke (resident-plan daemon: multiply, coalesce, metrics, drain)"
go build -o "$tmp/twoface-serve" ./cmd/twoface-serve
go build -o "$tmp/twoface-loadgen" ./cmd/twoface-loadgen
# Both kernel-dispatch modes: SIMD (default) and the forced-generic loops.
for genflag in "" "-force-generic"; do
    "$tmp/twoface-serve" -plans web:0.05 -K 32 -p 4 -listen 127.0.0.1:0 \
        -allow-hold $genflag >"$tmp/serve.out" 2>&1 &
    serve_pid=$!
    saddr=""
    for _ in $(seq 1 200); do
        saddr=$(sed -n 's|^serving on http://\([^ ]*\) .*|\1|p' "$tmp/serve.out")
        [ -n "$saddr" ] && break
        sleep 0.05
    done
    if [ -z "$saddr" ]; then
        echo "serve daemon never announced its address" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    # One multiply over plain HTTP answers with a result checksum.
    curl -sf -X POST "http://$saddr/v1/multiply" -H 'Content-Type: application/json' \
        -d '{"plan":"web","seed":1}' | grep -q '"checksum":'
    # Two identical concurrent requests: the duplicate must ride the leader.
    "$tmp/twoface-loadgen" -target "$saddr" -probe-coalesce
    curl -sf "http://$saddr/metrics" >"$tmp/serve_metrics.out"
    grep -q '^# EOF$' "$tmp/serve_metrics.out"
    coalesced=$(sed -n 's/^serve_coalesced_total \([0-9]*\)$/\1/p' "$tmp/serve_metrics.out")
    if [ -z "$coalesced" ] || [ "$coalesced" -lt 1 ]; then
        echo "metrics show no coalesced request (serve_coalesced_total=$coalesced)" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    # The outcome counters partition the admitted traffic exactly.
    awk '
        /^serve_requests_total /  { req = $2 }
        /^serve_completed_total / { done += $2 }
        /^serve_shed_total /      { done += $2 }
        /^serve_drained_total /   { done += $2 }
        /^serve_failed_total /    { done += $2 }
        END { exit !(req == done) }
    ' "$tmp/serve_metrics.out" || {
        echo "serve outcome counters do not sum to serve_requests_total" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    }
    # SIGTERM drains and exits cleanly (non-zero exit fails the gate).
    kill -TERM "$serve_pid"
    wait "$serve_pid"
    grep -q 'drained; exiting cleanly' "$tmp/serve.out"
done

echo "== check.sh: all green"
