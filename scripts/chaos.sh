#!/usr/bin/env bash
# Chaos sweep: run Two-Face and every baseline under a range of seeded
# random fault plans and assert each chaotic run matches its fault-free
# twin — bit-exact, or within reassociation ulps for algorithms that
# accumulate C concurrently (twoface-run exits non-zero past either bound).
# DESIGN.md section 7 describes the fault model; RandomFaultPlan guarantees
# every generated plan is survivable, so any failure here is a resilience bug.
#
# Usage: scripts/chaos.sh [seeds] [matrix] [scale]
#   seeds   how many consecutive seeds to sweep, starting at 1 (default 10)
#   matrix  registry matrix name (default web)
#   scale   matrix scale (default 0.05)
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

seeds=${1:-10}
matrix=${2:-web}
scale=${3:-0.05}
algos=(twoface ds1 ds2 allgather asynccoarse asyncfine)

go build -o /tmp/twoface-run-chaos ./cmd/twoface-run

for seed in $(seq 1 "$seeds"); do
    for algo in "${algos[@]}"; do
        out=$(/tmp/twoface-run-chaos -matrix "$matrix" -scale "$scale" \
            -algo "$algo" -chaos-seed "$seed" | grep '^chaos:' || true)
        if ! grep -Eq 'bit-exact with the fault-free run|matches the fault-free run within float tolerance' <<<"$out"; then
            echo "FAIL seed=$seed algo=$algo" >&2
            echo "$out" >&2
            exit 1
        fi
        echo "seed=$seed algo=$algo OK  ${out##*$'\n'}"
    done
done
echo "chaos sweep: all $seeds seeds x ${#algos[@]} algorithms bit-exact"
