#!/usr/bin/env bash
# Chaos sweep: run Two-Face and every baseline under a range of seeded
# random fault plans and assert each chaotic run matches its fault-free
# twin — bit-exact, or within reassociation ulps for algorithms that
# accumulate C concurrently (twoface-run exits non-zero past either bound).
# DESIGN.md section 7 describes the fault model; RandomFaultPlan guarantees
# every generated plan is survivable, so any failure here is a resilience bug.
#
# A second column sweeps the same seeds with -chaos-crash -recover (TwoFace
# only — checkpointed recovery covers the TwoFace executor, DESIGN.md
# section 12): the plan gains one rank crash, survivors redistribute its
# work, and the result must still match the fault-free twin with the crash
# actually having fired.
#
# Usage: scripts/chaos.sh [seeds] [matrix] [scale]
#   seeds   how many consecutive seeds to sweep, starting at 1 (default 10)
#   matrix  registry matrix name (default web)
#   scale   matrix scale (default 0.05)
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

seeds=${1:-10}
matrix=${2:-web}
scale=${3:-0.05}
algos=(twoface ds1 ds2 allgather asynccoarse asyncfine)

go build -o /tmp/twoface-run-chaos ./cmd/twoface-run

for seed in $(seq 1 "$seeds"); do
    for algo in "${algos[@]}"; do
        out=$(/tmp/twoface-run-chaos -matrix "$matrix" -scale "$scale" \
            -algo "$algo" -chaos-seed "$seed" | grep '^chaos:' || true)
        if ! grep -Eq 'bit-exact with the fault-free run|matches the fault-free run within float tolerance' <<<"$out"; then
            echo "FAIL seed=$seed algo=$algo" >&2
            echo "$out" >&2
            exit 1
        fi
        echo "seed=$seed algo=$algo OK  ${out##*$'\n'}"
    done
    # Recovery column: same seed plus one crash, TwoFace with -recover. The
    # run must report an actual recovery (the crash fired) and still match
    # the fault-free twin.
    out=$(/tmp/twoface-run-chaos -matrix "$matrix" -scale "$scale" \
        -algo twoface -chaos-seed "$seed" -chaos-crash -recover \
        | grep '^chaos:' || true)
    if ! grep -q 'chaos: recovered' <<<"$out" ||
        ! grep -Eq 'bit-exact with the fault-free run|matches the fault-free run within float tolerance' <<<"$out"; then
        echo "FAIL seed=$seed algo=twoface (crash recovery)" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "seed=$seed algo=twoface+crash OK  $(grep 'chaos: recovered' <<<"$out")"
done
echo "chaos sweep: all $seeds seeds x ${#algos[@]} algorithms bit-exact (+ crash recovery)"
