#!/usr/bin/env bash
# Run one Two-Face SpMM and drop a ready-to-open virtual-time trace.
#
#   scripts/trace.sh [matrix] [scale] [extra twoface-run flags...]
#
# Defaults: matrix=web, scale=0.25. The trace lands in ./run.trace.json and
# the matching report in ./run.json; open the trace at
# https://ui.perfetto.dev or chrome://tracing.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

matrix="${1:-web}"
scale="${2:-0.25}"
shift $(( $# > 2 ? 2 : $# )) || true

go run ./cmd/twoface-run -matrix "$matrix" -scale "$scale" -algo twoface \
    -verify=false -trace -trace-out run.trace.json -report run.json "$@"

echo
echo "trace:  run.trace.json  (open at https://ui.perfetto.dev)"
echo "report: run.json"
