#!/usr/bin/env bash
# Record the kernel-layer microbenchmarks into BENCH_kernels.json at the
# repo root: one object per benchmark with ns/op, B/op, and allocs/op, plus
# a small header identifying the toolchain. Compare runs with
#   git diff BENCH_kernels.json
# or, without overwriting the committed baseline, benchstat-style:
#   scripts/bench.sh -compare [benchtime]
# which reruns the benchmarks and prints old/new ns/op and the speedup ratio
# for every row shared with the committed BENCH_kernels.json.
# Usage: scripts/bench.sh [-compare] [benchtime]   (default 1s per benchmark)
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

COMPARE=0
if [ "${1:-}" = "-compare" ]; then
    COMPARE=1
    shift
fi
BENCHTIME="${1:-1s}"
OUT="BENCH_kernels.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
    -bench '^BenchmarkKernel(Axpy|AxpyVariants|AsyncStripeAccumulate|PanelMultiply|PanelVariants)$' \
    -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

# to_json RAW > json  — shared by both modes. Strips the -GOMAXPROCS suffix
# so rows are stable across machines.
to_json() {
    awk -v goversion="$(go env GOVERSION)" '
    BEGIN {
        printf "{\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", goversion
        n = 0
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""; bytes = ""; allocs = ""
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op")     ns = $(i - 1)
            if ($i == "B/op")      bytes = $(i - 1)
            if ($i == "allocs/op") allocs = $(i - 1)
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END { printf "\n  ]\n}\n" }
    ' "$1"
}

if [ "$COMPARE" = 1 ]; then
    # Join the fresh run against the committed baseline on benchmark name and
    # print a benchstat-style table. The committed file is left untouched.
    echo
    echo "== comparison vs committed $OUT"
    awk '
    # Pass 1: committed baseline rows — {"name": "...", "ns_per_op": N, ...}
    NR == FNR {
        if (match($0, /"name": "[^"]+"/)) {
            name = substr($0, RSTART + 9, RLENGTH - 10)
            if (match($0, /"ns_per_op": [0-9.e+-]+/))
                old[name] = substr($0, RSTART + 13, RLENGTH - 13)
        }
        next
    }
    # Pass 2: fresh raw benchmark output.
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""
        for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
        if (ns == "") next
        seen[name] = 1
        if (name in old) {
            printf "%-60s %12.4g %12.4g %8.2fx\n", name, old[name], ns, old[name] / ns
        } else {
            printf "%-60s %12s %12.4g %9s\n", name, "-", ns, "(new)"
        }
    }
    BEGIN {
        printf "%-60s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "speedup"
    }
    END {
        for (name in old) if (!(name in seen))
            printf "%-60s %12.4g %12s %9s\n", name, old[name], "-", "(gone)"
    }
    ' "$OUT" "$RAW"
    exit 0
fi

to_json "$RAW" > "$OUT"
echo "wrote $OUT"

# Communication-aggregation deltas: per registry matrix, one-sided request
# and byte counts for the legacy, batched-cold, and batched-warm paths, plus
# the sync-pipelining comparison (modeled_serial_seconds vs
# modeled_pipelined_seconds and the overlap_gain ratio — the serialized
# accounting is never faster). Compare runs with  git diff BENCH_comm.json
COMM_OUT="BENCH_comm.json"
go run ./cmd/twoface-bench -exp comm -scale 0.25 -comm-out "$COMM_OUT" >/dev/null
echo "wrote $COMM_OUT"
