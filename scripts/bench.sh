#!/usr/bin/env bash
# Record the kernel-layer microbenchmarks into BENCH_kernels.json at the
# repo root: one object per benchmark with ns/op, B/op, and allocs/op, plus
# a small header identifying the toolchain. Compare runs with
#   git diff BENCH_kernels.json
# Usage: scripts/bench.sh [benchtime]   (default 1s per benchmark)
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

BENCHTIME="${1:-1s}"
OUT="BENCH_kernels.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench '^BenchmarkKernel(Axpy|AsyncStripeAccumulate|PanelMultiply)$' \
    -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v goversion="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", goversion
    n = 0
}
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT"

# Communication-aggregation deltas: per registry matrix, one-sided request
# and byte counts for the legacy, batched-cold, and batched-warm paths, plus
# the sync-pipelining comparison (modeled_serial_seconds vs
# modeled_pipelined_seconds and the overlap_gain ratio — the serialized
# accounting is never faster). Compare runs with  git diff BENCH_comm.json
COMM_OUT="BENCH_comm.json"
go run ./cmd/twoface-bench -exp comm -scale 0.25 -comm-out "$COMM_OUT" >/dev/null
echo "wrote $COMM_OUT"
